"""Integration tests for distributed fleet sweeps.

The acceptance bar for the fleet layer is byte-identity: whatever the
interleaving of workers, crashes, steals and restarts, the reconciled store
must carry exactly the bytes a ``BatchRunner(jobs=1)`` sweep of the same
grid produces.
"""

from __future__ import annotations

import json

import pytest

from repro.orchestration import (
    BatchRunner,
    ResultCache,
    RunStore,
    grid_requests,
    load_grid,
    publish_grid,
    run_fleet,
    run_worker,
    sweep_id_for,
)
from repro.orchestration.fleet import claims_dir, load_worker_stats
from repro.orchestration.store import canonical_line


@pytest.fixture(scope="module")
def grid():
    return grid_requests(
        scenarios=["single_master", "mixed"],
        modes=["conservative", "als"],
        lob_depths=[8, 64],
        cycles=80,
    )


@pytest.fixture(scope="module")
def serial_records(grid):
    return BatchRunner(jobs=1).run(grid)


# ---------------------------------------------------------------------------
# Grid manifest.
# ---------------------------------------------------------------------------

def test_publish_and_load_grid_roundtrip(tmp_path, grid):
    sweep_id = publish_grid(tmp_path, grid)
    loaded_id, loaded = load_grid(tmp_path)
    assert loaded_id == sweep_id == sweep_id_for(grid)
    assert [r.request_id for r in loaded] == [r.request_id for r in grid]
    assert loaded == list(grid)  # full dataclass equality, not just ids


def test_load_grid_without_manifest_raises_with_hint(tmp_path):
    with pytest.raises(FileNotFoundError, match="repro sweep .* --fleet"):
        load_grid(tmp_path / "empty")


def test_publish_grid_is_idempotent(tmp_path, grid):
    first = publish_grid(tmp_path, grid)
    before = (tmp_path / "fleet" / "grid.json").read_bytes()
    assert publish_grid(tmp_path, grid) == first
    assert (tmp_path / "fleet" / "grid.json").read_bytes() == before


# ---------------------------------------------------------------------------
# Single in-process worker.
# ---------------------------------------------------------------------------

def test_single_worker_completes_the_grid(tmp_path, grid, serial_records):
    publish_grid(tmp_path / "cache", grid)
    stats = run_worker(tmp_path / "cache", owner="solo", poll_interval=0.01)
    assert stats.executed == len(grid)
    assert stats.claimed == len(grid)
    assert stats.stolen == 0 and stats.lost == 0
    assert stats.released == len(grid)
    cache = ResultCache(tmp_path / "cache")
    cached = {record.request_id: record for record in cache}
    assert [cached[r.request_id].as_dict() for r in grid] == [
        r.as_dict() for r in serial_records
    ]
    # No leases left behind, and the stats report landed on disk.
    assert list(claims_dir(tmp_path / "cache").glob("*.lease")) == []
    reports = load_worker_stats(tmp_path / "cache", sweep_id_for(grid))
    assert [report.owner for report in reports] == ["solo"]
    assert reports[0].executed == len(grid)


def test_worker_on_a_warm_cache_executes_nothing(tmp_path, grid, serial_records):
    publish_grid(tmp_path / "cache", grid)
    ResultCache(tmp_path / "cache").put_many(serial_records)
    stats = run_worker(tmp_path / "cache", owner="late", poll_interval=0.01)
    assert stats.executed == 0
    assert stats.deduped == len(grid)


# ---------------------------------------------------------------------------
# Multi-process fleets.
# ---------------------------------------------------------------------------

def test_fleet_two_workers_byte_identical_to_serial(
    tmp_path, grid, serial_records
):
    reference = RunStore(tmp_path / "reference.jsonl")
    reference.write(serial_records)
    store = RunStore(tmp_path / "fleet.jsonl")
    records, stats = run_fleet(
        grid, tmp_path / "cache", workers=2, store=store, poll_interval=0.02
    )
    assert store.digest() == reference.digest()
    assert [r.as_dict() for r in records] == [r.as_dict() for r in serial_records]
    # Default TTL is far above the sweep duration: no live lease can expire,
    # so the grid is executed exactly once with zero steals.
    assert stats.total("executed") == len(grid)
    assert stats.total("stolen") == 0
    assert stats.restarts == 0
    assert stats.reconcile_passes >= 1
    assert stats.grid_points == len(grid)


def test_fleet_kill_and_restart_byte_identical_to_serial(
    tmp_path, grid, serial_records
):
    """The acceptance criterion: SIGKILL one of three workers mid-sweep
    (holding a fresh claim), restart it, and still produce a store
    byte-identical to ``--jobs 1`` -- with the theft visible in FleetStats."""
    reference = RunStore(tmp_path / "reference.jsonl")
    reference.write(serial_records)
    store = RunStore(tmp_path / "fleet.jsonl")
    records, stats = run_fleet(
        grid,
        tmp_path / "cache",
        workers=3,
        store=store,
        ttl=1.0,
        poll_interval=0.02,
        kill_after=0,  # first worker dies on its first acquire, lease in hand
    )
    assert store.digest() == reference.digest()
    assert len(records) == len(grid)
    assert stats.restarts >= 1
    assert stats.total("stolen") >= 1
    # At least one execution per point; a tight TTL on a loaded single-core
    # host can occasionally steal a live-but-stalled lease, and concurrent
    # stealers can rarely both win the replace race -- redundant executions
    # are benign (the digest equality above proves byte-identity regardless).
    assert stats.total("executed") >= len(grid)
    # Survivors + the restarted worker all reported in; the killed
    # incarnation never writes a report.
    assert len(stats.workers) >= 2
    assert list(claims_dir(tmp_path / "cache").glob("*.lease")) == []


def test_fleet_zero_workers_reconciles_what_external_workers_did(
    tmp_path, grid, serial_records
):
    """--fleet 0 is finalize-only: reuse the cache the (external) workers
    filled, execute any remainder in-process, rewrite the store exactly."""
    cache = ResultCache(tmp_path / "cache")
    cache.put_many(serial_records[:5])  # externals got halfway then stopped
    reference = RunStore(tmp_path / "reference.jsonl")
    reference.write(serial_records)
    store = RunStore(tmp_path / "fleet.jsonl")
    _, stats = run_fleet(
        grid, tmp_path / "cache", workers=0, store=store, poll_interval=0.01
    )
    assert store.digest() == reference.digest()
    assert stats.executed_locally == len(grid) - 5
    assert stats.workers == []  # nobody local ran


def test_fleet_reconciles_a_preexisting_torn_store(
    tmp_path, grid, serial_records
):
    """A store torn mid-write by a crashed driver is healed: torn lines are
    counted, intact records reused, and the rewrite is byte-identical."""
    reference = RunStore(tmp_path / "reference.jsonl")
    reference.write(serial_records)
    lines = [canonical_line(record) for record in serial_records]
    store_path = tmp_path / "fleet.jsonl"
    store_path.write_text(
        lines[0] + "\n" + lines[1] + "\n" + lines[2][: len(lines[2]) // 2]
    )
    store = RunStore(store_path)
    _, stats = run_fleet(
        grid, tmp_path / "cache", workers=1, store=store, poll_interval=0.02
    )
    assert store.digest() == reference.digest()
    assert stats.torn_records == 1
    assert stats.reused_records == 2


def test_fleet_stats_summary_mentions_the_interesting_counts(tmp_path, grid):
    store = RunStore(tmp_path / "fleet.jsonl")
    _, stats = run_fleet(
        grid, tmp_path / "cache", workers=1, store=store, poll_interval=0.02
    )
    text = stats.summary()
    assert f"{len(grid)} point(s)" in text
    assert "stolen" in text and "reconciliation pass(es)" in text


def test_worker_stats_files_are_json_with_wallclock(tmp_path, grid):
    publish_grid(tmp_path / "cache", grid)
    stats = run_worker(tmp_path / "cache", owner="probe", poll_interval=0.01)
    path = (
        tmp_path / "cache" / "fleet" / "stats" / sweep_id_for(grid) / "probe.json"
    )
    payload = json.loads(path.read_text())
    assert payload["executed"] == stats.executed == len(grid)
    assert payload["elapsed_seconds"] > 0
