"""Tests for the batch-run orchestrator (requests, runner, store)."""

from __future__ import annotations

import json

import pytest

from repro.core import OperatingMode
from repro.orchestration import (
    BatchRunner,
    RunRecord,
    RunRequest,
    RunStore,
    derive_seed,
    execute_request,
    grid_requests,
)
from repro.orchestration.store import canonical_line


# ---------------------------------------------------------------------------
# RunRequest
# ---------------------------------------------------------------------------

def test_request_builds_config():
    request = RunRequest(
        scenario="als_streaming",
        mode="sla",
        cycles=123,
        lob_depth=8,
        accuracy=0.9,
        seed=99,
        config_overrides={"predict_new_remote_bursts": False},
    )
    config = request.build_config()
    assert config.mode is OperatingMode.SLA
    assert config.total_cycles == 123
    assert config.lob_depth == 8
    assert config.forced_accuracy == 0.9
    assert config.forced_accuracy_seed == 99
    assert config.predict_new_remote_bursts is False


def test_request_id_is_stable_and_payload_sensitive():
    a = RunRequest(scenario="mixed", mode="als", cycles=100)
    b = RunRequest(scenario="mixed", mode="als", cycles=100)
    c = RunRequest(scenario="mixed", mode="als", cycles=101)
    assert a.request_id == b.request_id
    assert a.request_id != c.request_id


def test_engine_name_resolution():
    assert RunRequest(scenario="mixed", mode="conservative").engine_name() == "conventional"
    assert RunRequest(scenario="mixed", mode="auto").engine_name() == "optimistic"
    assert RunRequest(scenario="mixed", mode="als", engine="analytical").engine_name() == "analytical"


def test_derive_seed_deterministic_and_coordinate_sensitive():
    s1 = derive_seed(2005, "mixed", "als", 0.9, 64)
    s2 = derive_seed(2005, "mixed", "als", 0.9, 64)
    s3 = derive_seed(2005, "mixed", "als", 0.8, 64)
    s4 = derive_seed(7, "mixed", "als", 0.9, 64)
    assert s1 == s2
    assert len({s1, s3, s4}) == 3


def test_grid_requests_order_and_seeds():
    requests = grid_requests(
        scenarios=["als_streaming", "mixed"],
        modes=["conservative", "als"],
        accuracies=[None, 0.9],
        cycles=100,
    )
    assert len(requests) == 8
    # nested product order: scenario-major
    assert [r.scenario for r in requests[:4]] == ["als_streaming"] * 4
    assert requests[0].mode == "conservative" and requests[2].mode == "als"
    # per-request seeds are deterministic functions of the coordinates
    again = grid_requests(
        scenarios=["als_streaming", "mixed"],
        modes=["conservative", "als"],
        accuracies=[None, 0.9],
        cycles=100,
    )
    assert [r.seed for r in requests] == [r.seed for r in again]
    # a filtered grid keeps the same seed for the same point
    only_mixed = grid_requests(
        scenarios=["mixed"], modes=["als"], accuracies=[0.9], cycles=100
    )
    matching = [
        r for r in requests
        if r.scenario == "mixed" and r.mode == "als" and r.accuracy == 0.9
    ]
    assert matching[0].seed == only_mixed[0].seed


# ---------------------------------------------------------------------------
# execute_request / RunRecord
# ---------------------------------------------------------------------------

def test_execute_request_produces_deterministic_record():
    request = RunRequest(
        scenario="mixed",
        mode="als",
        cycles=150,
        accuracy=0.9,
        scenario_params={"n_transactions": 12},
    )
    first = execute_request(request)
    second = execute_request(request)
    assert first.as_dict() == second.as_dict()
    assert first.digest == second.digest
    assert first.committed_cycles >= 150
    assert first.engine == "optimistic"
    assert first.monitors_ok


def test_execute_request_analytical_engine_needs_no_mechanism():
    record = execute_request(
        RunRequest(scenario="mixed", mode="als", cycles=100, engine="analytical")
    )
    assert record.engine == "analytical"
    assert record.channel == {}
    assert record.performance > 0


def test_record_digest_detects_tampering():
    record = execute_request(RunRequest(scenario="single_master", mode="conservative", cycles=60))
    assert record.digest == record.compute_digest()
    record.performance += 1.0
    assert record.digest != record.compute_digest()


# ---------------------------------------------------------------------------
# BatchRunner: parallel == serial
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_grid():
    return grid_requests(
        scenarios=["single_master", "mixed"],
        modes=["conservative", "als"],
        accuracies=[None, 0.9],
        cycles=120,
    )


def test_parallel_matches_serial_row_for_row(small_grid):
    serial = BatchRunner(jobs=1).run(small_grid)
    parallel = BatchRunner(jobs=4).run(small_grid)
    assert len(serial) == len(parallel) == len(small_grid)
    for left, right in zip(serial, parallel):
        assert left.as_dict() == right.as_dict()
    assert [r.digest for r in serial] == [r.digest for r in parallel]


def test_parallel_store_bytes_identical(tmp_path, small_grid):
    serial_store = RunStore(tmp_path / "serial.jsonl")
    parallel_store = RunStore(tmp_path / "parallel.jsonl")
    serial_store.write(BatchRunner(jobs=1).run(small_grid))
    parallel_store.write(BatchRunner(jobs=4).run(small_grid))
    assert serial_store.digest() == parallel_store.digest()
    assert (tmp_path / "serial.jsonl").read_bytes() == (
        tmp_path / "parallel.jsonl"
    ).read_bytes()


def test_runner_progress_callback_sees_every_record(small_grid):
    seen = []
    BatchRunner(jobs=2).run(
        small_grid, progress=lambda done, total, record: seen.append((done, total))
    )
    assert len(seen) == len(small_grid)
    assert seen[-1] == (len(small_grid), len(small_grid))


# ---------------------------------------------------------------------------
# RunStore
# ---------------------------------------------------------------------------

def test_store_round_trip(tmp_path):
    records = BatchRunner().run(
        [RunRequest(scenario="single_master", mode="conservative", cycles=50)]
    )
    store = RunStore(tmp_path / "runs.jsonl")
    assert store.write(records) == 1
    loaded = store.load()
    assert len(loaded) == len(store) == 1
    assert isinstance(loaded[0], RunRecord)
    assert loaded[0].as_dict() == records[0].as_dict()


def test_store_append(tmp_path):
    store = RunStore(tmp_path / "runs.jsonl")
    record = execute_request(RunRequest(scenario="single_master", mode="conservative", cycles=50))
    store.write([record])
    store.append([record])
    assert len(store) == 2


def test_canonical_line_is_valid_sorted_json():
    record = execute_request(RunRequest(scenario="single_master", mode="conservative", cycles=50))
    line = canonical_line(record)
    payload = json.loads(line)
    assert list(payload) == sorted(payload)
    assert payload["digest"] == record.digest


# ---------------------------------------------------------------------------
# Channel-fault axis
# ---------------------------------------------------------------------------

def test_fault_free_request_omits_channel_faults_from_canonical_payload():
    """Ideal requests must keep their historical ids (the fault axis is new)."""
    request = RunRequest(scenario="mixed", mode="als", cycles=100)
    assert "channel_faults" not in request.as_dict()


def test_channel_faults_change_the_request_id():
    from repro.channel.faults import ChannelFaultConfig

    ideal = RunRequest(scenario="mixed", mode="als", cycles=100)
    faults = ChannelFaultConfig(loss_rate=0.05, seed=3).as_dict()
    faulty = RunRequest(scenario="mixed", mode="als", cycles=100, channel_faults=faults)
    assert ideal.request_id != faulty.request_id
    assert faulty.as_dict()["channel_faults"] == faults


def test_channel_faults_round_trip_through_build_config():
    from repro.channel.faults import ChannelFaultConfig

    faults = ChannelFaultConfig(loss_rate=0.1, duplicate_rate=0.05, seed=11)
    request = RunRequest(scenario="mixed", channel_faults=faults.as_dict())
    assert request.channel_faults_override() == faults
    assert request.build_config().channel_faults == faults


def test_invalid_channel_faults_payload_rejected():
    from repro.channel.faults import ChannelFaultConfigError

    request = RunRequest(scenario="mixed", channel_faults={"loss_rtae": 0.1})
    with pytest.raises(ChannelFaultConfigError):
        request.channel_faults_override()


def test_grid_requests_thread_channel_faults_into_every_request():
    from repro.channel.faults import ChannelFaultConfig

    faults = ChannelFaultConfig(loss_rate=0.02, seed=5).as_dict()
    requests = grid_requests(
        ["mixed"], ["conservative", "als"], cycles=50, channel_faults=faults
    )
    assert len(requests) == 2
    assert all(r.channel_faults == faults for r in requests)
