"""Durable request execution: snapshot cadence, resume, quarantine, drain."""

from __future__ import annotations

import pytest

from repro.core.snapshot import AbortRun, write_snapshot
from repro.orchestration import (
    ChaosConfig,
    ChaosMonkey,
    CheckpointPolicy,
    DurableRunEvents,
    execute_request,
    execute_request_durable,
    snapshot_path,
)
from repro.orchestration.durable import CORRUPT_SUFFIX
from repro.orchestration.request import (
    RunRequest,
    build_request_engine,
    canonical_json,
)

REQUEST = RunRequest(scenario="als_streaming", mode="als", cycles=150)


def _canonical(record):
    return canonical_json(record.as_dict())


# ---------------------------------------------------------------------------
# CheckpointPolicy.
# ---------------------------------------------------------------------------

def test_policy_default_is_disabled():
    assert not CheckpointPolicy().enabled
    assert CheckpointPolicy(every_cycles=10).enabled
    assert CheckpointPolicy(every_seconds=1.0).enabled


@pytest.mark.parametrize("kwargs", [
    {"every_cycles": 0},
    {"every_cycles": -5},
    {"every_seconds": 0.0},
    {"every_seconds": -1.0},
])
def test_policy_rejects_non_positive_cadence(kwargs):
    with pytest.raises(ValueError):
        CheckpointPolicy(**kwargs)


# ---------------------------------------------------------------------------
# The happy path.
# ---------------------------------------------------------------------------

def test_durable_matches_plain_execution_and_cleans_up(tmp_path):
    events = DurableRunEvents()
    record = execute_request_durable(
        REQUEST,
        tmp_path,
        policy=CheckpointPolicy(every_cycles=25),
        events=events,
    )
    assert _canonical(record) == _canonical(execute_request(REQUEST))
    assert events.snapshots_written > 0
    assert events.resumed_from_cycle is None
    # Success consumes the snapshot: the record is the durable artefact now.
    assert not snapshot_path(tmp_path, REQUEST.request_id).exists()


def test_durable_without_policy_writes_nothing(tmp_path):
    events = DurableRunEvents()
    record = execute_request_durable(REQUEST, tmp_path, events=events)
    assert events.snapshots_written == 0
    assert _canonical(record) == _canonical(execute_request(REQUEST))


def test_durable_heartbeat_reports_progress(tmp_path):
    beats = []
    execute_request_durable(REQUEST, tmp_path, heartbeat=beats.append)
    assert beats and beats == sorted(beats)
    assert beats[-1] <= REQUEST.cycles


def test_durable_pseudo_engine_skips_machinery(tmp_path):
    request = RunRequest(
        scenario="als_streaming", mode="als", cycles=150, engine="analytical"
    )
    events = DurableRunEvents()
    record = execute_request_durable(
        request, tmp_path, policy=CheckpointPolicy(every_cycles=10), events=events
    )
    assert record.engine == "analytical"
    assert events.snapshots_written == 0


# ---------------------------------------------------------------------------
# Resume.
# ---------------------------------------------------------------------------

def _park_snapshot(tmp_path, request, at_cycle):
    """A mid-run snapshot of ``request``, as a crashed worker leaves it."""

    class AbortAt:
        def __call__(self, engine):
            if engine.ledger.committed_cycles >= at_cycle:
                raise AbortRun("test interrupt")

    engine = build_request_engine(request)
    engine.run_hook = AbortAt()
    with pytest.raises(AbortRun):
        engine.run()
    engine.run_hook = None
    write_snapshot(
        snapshot_path(tmp_path, request.request_id),
        engine,
        request_id=request.request_id,
    )


def test_durable_resumes_from_existing_snapshot_bit_identical(tmp_path):
    baseline = execute_request(REQUEST)
    _park_snapshot(tmp_path, REQUEST, at_cycle=60)
    events = DurableRunEvents()
    record = execute_request_durable(REQUEST, tmp_path, events=events)
    assert events.resumed_from_cycle is not None
    assert events.resumed_from_cycle >= 60
    assert _canonical(record) == _canonical(baseline)


def test_durable_quarantines_corrupt_snapshot_and_runs_cold(tmp_path):
    baseline = execute_request(REQUEST)
    path = snapshot_path(tmp_path, REQUEST.request_id)
    _park_snapshot(tmp_path, REQUEST, at_cycle=60)
    data = bytearray(path.read_bytes())
    data[-7] ^= 0xFF
    path.write_bytes(bytes(data))

    events = DurableRunEvents()
    record = execute_request_durable(REQUEST, tmp_path, events=events)
    assert events.corrupt_snapshots == 1
    assert events.resumed_from_cycle is None  # cold start, not a resume
    assert _canonical(record) == _canonical(baseline)
    assert not path.exists()
    assert path.with_name(path.name + CORRUPT_SUFFIX).exists()  # post-mortem


def test_durable_rejects_snapshot_of_another_request(tmp_path):
    other = RunRequest(scenario="single_master", mode="conservative", cycles=80)
    _park_snapshot(tmp_path, other, at_cycle=20)
    # File the foreign snapshot under REQUEST's path (an addressing bug).
    snapshot_path(tmp_path, other.request_id).rename(
        snapshot_path(tmp_path, REQUEST.request_id)
    )
    events = DurableRunEvents()
    record = execute_request_durable(REQUEST, tmp_path, events=events)
    assert events.corrupt_snapshots == 1
    assert events.resumed_from_cycle is None
    assert _canonical(record) == _canonical(execute_request(REQUEST))


# ---------------------------------------------------------------------------
# Failure injection.
# ---------------------------------------------------------------------------

def test_disk_full_chaos_is_counted_never_fatal(tmp_path):
    chaos = ChaosMonkey(
        ChaosConfig(seed=1, disk_full_probability=1.0, once=False),
        state_dir=tmp_path / "chaos",
    )
    events = DurableRunEvents()
    record = execute_request_durable(
        REQUEST,
        tmp_path,
        policy=CheckpointPolicy(every_cycles=20),
        chaos=chaos,
        events=events,
    )
    assert events.snapshot_write_errors > 0
    assert events.snapshots_written == 0
    assert _canonical(record) == _canonical(execute_request(REQUEST))


def test_drain_persists_a_snapshot_and_aborts(tmp_path):
    drained = []

    def drain():
        return bool(drained)

    def heartbeat(committed):
        if committed >= 50:
            drained.append(committed)

    events = DurableRunEvents()
    with pytest.raises(AbortRun, match="drain"):
        execute_request_durable(
            REQUEST,
            tmp_path,
            policy=CheckpointPolicy(every_cycles=10**9),  # never due on its own
            heartbeat=heartbeat,
            drain=drain,
            events=events,
        )
    path = snapshot_path(tmp_path, REQUEST.request_id)
    assert path.exists()  # the drain's parting snapshot

    # A successor (any process, any time) resumes and finishes bit-identically.
    events2 = DurableRunEvents()
    record = execute_request_durable(REQUEST, tmp_path, events=events2)
    assert events2.resumed_from_cycle is not None
    assert _canonical(record) == _canonical(execute_request(REQUEST))
    assert not path.exists()
