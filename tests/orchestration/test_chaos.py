"""The deterministic chaos harness: schedules, markers, once-only firing."""

from __future__ import annotations

import pytest

from repro.orchestration import ChaosConfig, ChaosMonkey, plan_for
from repro.orchestration.chaos import CHAOS_ACTIONS


class _FakeEngine:
    """Just enough engine surface for the injection points."""

    def __init__(self, committed: int, total: int) -> None:
        class Ledger:
            committed_cycles = committed

        class Config:
            total_cycles = total

        self.ledger = Ledger()
        self.config = Config()


# ---------------------------------------------------------------------------
# Config validation and serialisation.
# ---------------------------------------------------------------------------

def test_config_rejects_probability_overflow_and_bad_window():
    with pytest.raises(ValueError, match="sum into"):
        ChaosConfig(kill_probability=0.6, hang_probability=0.6)
    with pytest.raises(ValueError, match="window"):
        ChaosConfig(kill_probability=0.1, window_start=0.8, window_end=0.2)


def test_config_roundtrip_and_idle():
    config = ChaosConfig(seed=9, kill_probability=0.3, hang_seconds=5.0, once=False)
    assert ChaosConfig.from_dict(config.as_dict()) == config
    assert not config.is_idle
    assert ChaosConfig().is_idle
    with pytest.raises(ValueError, match="schema"):
        ChaosConfig.from_dict({"seed": 1, "mystery": True})


# ---------------------------------------------------------------------------
# Plans.
# ---------------------------------------------------------------------------

def test_plan_is_deterministic_and_mid_run():
    config = ChaosConfig(seed=3, kill_probability=0.5, hang_probability=0.5)
    for request_id in ("aa" * 6, "bc" * 6, "07" * 6):
        first = plan_for(config, request_id, 1000)
        again = plan_for(config, request_id, 1000)
        assert first == again
        assert first.armed
        assert first.action in CHAOS_ACTIONS
        # Window default [0.25, 0.75]: chaos strikes mid-run, never cycle 0.
        assert 250 <= first.trigger_cycle <= 750


def test_plan_idle_config_never_arms():
    plan = plan_for(ChaosConfig(seed=1), "ab" * 6, 500)
    assert not plan.armed
    assert plan.action is None


def test_plan_probabilities_partition_requests():
    """With kill+hang+none at 1/3 each, a large sample hits all outcomes."""
    config = ChaosConfig(seed=5, kill_probability=1 / 3, hang_probability=1 / 3)
    actions = {
        plan_for(config, f"{i:012x}", 100).action for i in range(64)
    }
    assert actions == {None, "kill", "hang"}


def test_distinct_seeds_sabotage_distinct_subsets():
    ids = [f"{i:012x}" for i in range(64)]

    def victims(seed):
        config = ChaosConfig(seed=seed, kill_probability=0.3)
        return {r for r in ids if plan_for(config, r, 100).armed}

    assert victims(1) != victims(2)


# ---------------------------------------------------------------------------
# Markers and once-only semantics.
# ---------------------------------------------------------------------------

def test_sabotage_snapshot_fires_once_with_markers(tmp_path):
    config = ChaosConfig(seed=0, disk_full_probability=1.0)
    monkey = ChaosMonkey(config, state_dir=tmp_path)
    request_id = "ab" * 6
    plan = monkey.plan(request_id, 100)
    engine = _FakeEngine(committed=plan.trigger_cycle, total=100)
    assert monkey.sabotage_snapshot(request_id, engine)
    # The marker is on disk, so a *different* monkey (retry in a new
    # process) sees it and does not re-fire.
    fresh = ChaosMonkey(config, state_dir=tmp_path)
    assert fresh.has_fired(request_id, "disk_full")
    assert not fresh.sabotage_snapshot(request_id, engine)


def test_sabotage_snapshot_refires_when_once_is_false(tmp_path):
    config = ChaosConfig(seed=0, disk_full_probability=1.0, once=False)
    monkey = ChaosMonkey(config, state_dir=tmp_path)
    request_id = "ab" * 6
    engine = _FakeEngine(committed=99, total=100)
    assert monkey.sabotage_snapshot(request_id, engine)
    assert monkey.sabotage_snapshot(request_id, engine)  # again, by design


def test_no_fire_before_trigger_cycle(tmp_path):
    config = ChaosConfig(seed=0, disk_full_probability=1.0)
    monkey = ChaosMonkey(config, state_dir=tmp_path)
    request_id = "cd" * 6
    plan = monkey.plan(request_id, 1000)
    early = _FakeEngine(committed=plan.trigger_cycle - 1, total=1000)
    assert not monkey.sabotage_snapshot(request_id, early)


def test_memory_only_markers_without_state_dir():
    config = ChaosConfig(seed=0, disk_full_probability=1.0)
    monkey = ChaosMonkey(config)
    engine = _FakeEngine(committed=99, total=100)
    assert monkey.sabotage_snapshot("ef" * 6, engine)
    assert not monkey.sabotage_snapshot("ef" * 6, engine)  # in-memory once
    # But a fresh monkey has no memory: once-across-processes needs a dir.
    assert ChaosMonkey(config).sabotage_snapshot("ef" * 6, engine)
