"""Tests for the content-addressed result cache and its runner integration."""

from __future__ import annotations

import pytest

from repro.orchestration import (
    BatchRunner,
    ResultCache,
    RunRequest,
    RunStore,
    execute_request,
    grid_requests,
)
from repro.orchestration.cache import SHARD_CHARS
from repro.orchestration.store import canonical_line


@pytest.fixture(scope="module")
def record():
    return execute_request(
        RunRequest(scenario="single_master", mode="conservative", cycles=60)
    )


@pytest.fixture(scope="module")
def als_record():
    return execute_request(
        RunRequest(scenario="single_master", mode="als", cycles=60, accuracy=0.9)
    )


# ---------------------------------------------------------------------------
# Cache basics.
# ---------------------------------------------------------------------------

def test_get_on_empty_cache_misses(tmp_path, record):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get(record.request_id) is None
    assert cache.stats.misses == 1
    assert cache.stats.hits == 0


def test_put_then_get_round_trips(tmp_path, record):
    cache = ResultCache(tmp_path / "cache")
    assert cache.put(record) == 1
    hit = cache.get(record.request_id)
    assert hit is not None
    assert hit.as_dict() == record.as_dict()
    assert cache.stats.hits == 1
    assert cache.stats.stores == 1


def test_get_from_fresh_instance_reads_disk(tmp_path, record, als_record):
    ResultCache(tmp_path / "cache").put_many([record, als_record])
    cache = ResultCache(tmp_path / "cache")
    assert cache.get(record.request_id).as_dict() == record.as_dict()
    assert cache.get(als_record.request_id).as_dict() == als_record.as_dict()
    assert len(cache) == 2
    assert {r.request_id for r in cache} == {record.request_id, als_record.request_id}


def test_records_land_in_their_shard(tmp_path, record):
    cache = ResultCache(tmp_path / "cache")
    cache.put(record)
    shard = cache.shard_path(record.request_id)
    assert shard.name == f"{record.request_id[:SHARD_CHARS]}.jsonl"
    assert shard.read_text() == canonical_line(record) + "\n"


def test_put_is_idempotent_and_keeps_bytes_stable(tmp_path, record):
    cache = ResultCache(tmp_path / "cache")
    cache.put(record)
    before = cache.shard_path(record.request_id).read_bytes()
    assert cache.put(record) == 0
    assert ResultCache(tmp_path / "cache").put(record) == 0
    assert cache.shard_path(record.request_id).read_bytes() == before


def test_contains(tmp_path, record):
    cache = ResultCache(tmp_path / "cache")
    request = RunRequest(scenario="single_master", mode="conservative", cycles=60)
    assert request.request_id == record.request_id
    assert request not in cache
    cache.put(record)
    assert request in cache
    assert record.request_id in cache


def test_damaged_shard_lines_are_dropped_not_served(tmp_path, record):
    cache = ResultCache(tmp_path / "cache")
    cache.put(record)
    shard = cache.shard_path(record.request_id)
    line = canonical_line(record)
    # a torn half-line and a non-JSON line around the intact one
    shard.write_text(line[: len(line) // 2] + "\n" + line + "\n" + "{not json\n")
    fresh = ResultCache(tmp_path / "cache")
    hit = fresh.get(record.request_id)
    assert hit is not None
    assert hit.as_dict() == record.as_dict()
    assert fresh.stats.invalid == 2


def test_digest_tampered_record_is_dropped(tmp_path, record):
    cache = ResultCache(tmp_path / "cache")
    cache.put(record)
    shard = cache.shard_path(record.request_id)
    shard.write_text(
        canonical_line(record).replace('"monitors_ok":true', '"monitors_ok":false')
        + "\n"
    )
    fresh = ResultCache(tmp_path / "cache")
    assert fresh.get(record.request_id) is None
    assert fresh.stats.invalid == 1


def test_wrong_shard_record_is_ignored(tmp_path, record):
    cache = ResultCache(tmp_path / "cache")
    wrong = tmp_path / "cache" / "zz.jsonl"
    wrong.parent.mkdir(parents=True, exist_ok=True)
    wrong.write_text(canonical_line(record) + "\n")
    assert cache.get("zz" + record.request_id[2:]) is None
    assert cache.stats.invalid == 1


# ---------------------------------------------------------------------------
# Damage quarantine: corrupt lines move to a .corrupt sidecar exactly once.
# ---------------------------------------------------------------------------

def test_damaged_lines_are_quarantined_to_sidecar(tmp_path, record):
    cache = ResultCache(tmp_path / "cache")
    cache.put(record)
    shard = cache.shard_path(record.request_id)
    line = canonical_line(record)
    torn = line[: len(line) // 2]
    shard.write_text(torn + "\n" + line + "\n" + "{not json\n")

    fresh = ResultCache(tmp_path / "cache")
    assert fresh.get(record.request_id) is not None
    assert fresh.stats.invalid == 2
    assert fresh.stats.quarantined == 2
    # The raw damaged bytes are preserved verbatim for post-mortems...
    sidecar = shard.with_name(shard.name + ".corrupt")
    assert sidecar.read_text() == torn + "\n" + "{not json\n"
    # ...and the shard itself was rewritten clean, keeping only verified
    # records, so the damage is not re-counted on every future load.
    assert shard.read_text() == line + "\n"
    again = ResultCache(tmp_path / "cache")
    assert again.get(record.request_id) is not None
    assert again.stats.invalid == 0
    assert again.stats.quarantined == 0


def test_quarantine_sidecar_accumulates_across_incidents(tmp_path, record):
    cache = ResultCache(tmp_path / "cache")
    cache.put(record)
    shard = cache.shard_path(record.request_id)
    line = canonical_line(record)
    sidecar = shard.with_name(shard.name + ".corrupt")
    for junk in ("first incident\n", "second incident\n"):
        shard.write_text(line + "\n" + junk)
        ResultCache(tmp_path / "cache").get(record.request_id)
    assert sidecar.read_text() == "first incident\nsecond incident\n"


def test_quarantine_counts_in_stats_summary(tmp_path, record):
    cache = ResultCache(tmp_path / "cache")
    cache.put(record)
    shard = cache.shard_path(record.request_id)
    shard.write_text(canonical_line(record) + "\n" + "garbage\n")
    fresh = ResultCache(tmp_path / "cache")
    fresh.get(record.request_id)
    summary = fresh.stats.summary()
    assert "1 invalid line(s) dropped" in summary
    assert "1 damaged line(s) quarantined" in summary


def test_wrong_shard_record_is_quarantined_too(tmp_path, record):
    cache = ResultCache(tmp_path / "cache")
    wrong = tmp_path / "cache" / "zz.jsonl"
    wrong.parent.mkdir(parents=True, exist_ok=True)
    wrong.write_text(canonical_line(record) + "\n")
    assert cache.get("zz" + record.request_id[2:]) is None
    assert cache.stats.quarantined == 1
    assert wrong.read_text() == ""  # rewritten clean: nothing verified
    sidecar = wrong.with_name(wrong.name + ".corrupt")
    assert sidecar.read_text() == canonical_line(record) + "\n"


# ---------------------------------------------------------------------------
# Runner integration: hits skip execution, results stay byte-identical.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_grid():
    return grid_requests(
        scenarios=["single_master", "mixed"],
        modes=["conservative", "als"],
        cycles=80,
    )


def test_runner_cold_cache_executes_and_stores(tmp_path, small_grid):
    cache = ResultCache(tmp_path / "cache")
    records = BatchRunner(jobs=1).run(small_grid, cache=cache)
    assert len(records) == len(small_grid)
    assert cache.stats.misses == len(small_grid)
    assert cache.stats.stores == len(small_grid)
    assert len(cache) == len(small_grid)


def test_runner_warm_cache_runs_zero_engines(tmp_path, small_grid, monkeypatch):
    cache = ResultCache(tmp_path / "cache")
    cold = BatchRunner(jobs=1).run(small_grid, cache=cache)

    def explode(request):
        raise AssertionError(f"engine executed on a warm cache: {request}")

    monkeypatch.setattr("repro.orchestration.runner.execute_request", explode)
    warm = BatchRunner(jobs=1).run(small_grid, cache=cache)
    assert [r.as_dict() for r in warm] == [r.as_dict() for r in cold]
    assert cache.stats.hits == len(small_grid)


def test_runner_partial_cache_executes_only_misses(tmp_path, small_grid):
    cache = ResultCache(tmp_path / "cache")
    # warm half the grid
    BatchRunner(jobs=1).run(small_grid[: len(small_grid) // 2], cache=cache)
    before = cache.stats.snapshot()
    records = BatchRunner(jobs=1).run(small_grid, cache=cache)
    delta = cache.stats.since(before)
    assert delta.hits == len(small_grid) // 2
    assert delta.stores == len(small_grid) - len(small_grid) // 2
    assert [r.request_id for r in records] == [r.request_id for r in small_grid]


def test_warm_cache_store_bytes_match_cold_and_uncached(tmp_path, small_grid):
    cache = ResultCache(tmp_path / "cache")
    plain = RunStore(tmp_path / "plain.jsonl")
    cold = RunStore(tmp_path / "cold.jsonl")
    warm = RunStore(tmp_path / "warm.jsonl")
    plain.write(BatchRunner(jobs=1).run(small_grid))
    cold.write(BatchRunner(jobs=1).run(small_grid, cache=cache))
    warm.write(BatchRunner(jobs=1).run(small_grid, cache=cache))
    assert plain.digest() == cold.digest() == warm.digest()


def test_runner_cache_progress_counts_every_request(tmp_path, small_grid):
    cache = ResultCache(tmp_path / "cache")
    BatchRunner(jobs=1).run(small_grid[:2], cache=cache)
    seen = []
    BatchRunner(jobs=2).run(
        small_grid,
        progress=lambda done, total, record: seen.append((done, total)),
        cache=cache,
    )
    assert seen == [(i + 1, len(small_grid)) for i in range(len(small_grid))]
