"""Supervised execution: watchdog, retry, quarantine, exit-code taxonomy.

These tests spawn real child processes (the supervisor's unit of isolation
is a process -- a hung engine cannot be un-hung from inside).  Runs are kept
tiny and deadlines tight so the suite stays fast.
"""

from __future__ import annotations

import json

import pytest

from repro.orchestration import (
    EXIT_CODES,
    ChaosConfig,
    ResultCache,
    RunFailure,
    SupervisorPolicy,
    CheckpointPolicy,
    execute_request,
    failures_path,
    load_failures,
    quarantine_report,
    run_supervised,
    run_supervised_batch,
    sweep_exit_code,
    write_failures,
)
from repro.orchestration.request import RunRecord, RunRequest, canonical_json

REQUEST = RunRequest(scenario="als_streaming", mode="als", cycles=120)

#: Conservative mode reaches a safe point at every committed cycle, so a
#: chaos trigger cycle always lands on one -- the right workload for tests
#: that must *guarantee* an injected kill or hang fires.
KILLABLE = RunRequest(scenario="single_master", mode="conservative", cycles=120)

#: The catalog's deterministic-degradation recipe: total loss with a small
#: give-up threshold degrades the channel on the first conservative drive,
#: identically on every attempt.
DEGRADING = RunRequest(
    scenario="mixed",
    mode="als",
    cycles=200,
    channel_faults={"loss_rate": 1.0, "max_attempts": 3},
)


def _canonical(record):
    return canonical_json(record.as_dict())


# ---------------------------------------------------------------------------
# Policy and failure record plumbing (no child processes).
# ---------------------------------------------------------------------------

def test_policy_validation():
    with pytest.raises(ValueError):
        SupervisorPolicy(deadline=0)
    with pytest.raises(ValueError):
        SupervisorPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        SupervisorPolicy(poll_interval=0)


def test_policy_backoff_is_exponential_and_capped():
    policy = SupervisorPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5)
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.2)
    assert policy.backoff(10) == pytest.approx(0.5)  # capped


def test_run_failure_roundtrip_and_exit_codes():
    failure = RunFailure(
        request_id="ab" * 6,
        label="p=0.9",
        scenario="mixed",
        mode="als",
        kind="timeout",
        attempts=3,
        message="deadline blown",
        detail=[{"attempt": 0, "status": "timeout"}],
    )
    assert failure.exit_code == EXIT_CODES["timeout"] == 10
    assert RunFailure.from_dict(failure.as_dict()) == failure
    with pytest.raises(ValueError, match="unknown failure kind"):
        RunFailure(
            request_id="x", label="", scenario="s", mode="als",
            kind="mystery", attempts=1, message="",
        )
    with pytest.raises(ValueError, match="schema"):
        RunFailure.from_dict({"kind": "timeout"})


def test_exit_codes_are_distinct_and_nonzero():
    codes = list(EXIT_CODES.values())
    assert len(set(codes)) == len(codes)
    assert all(code not in (0, 1, 2) for code in codes)  # clear of argparse/errors


def test_sweep_exit_code_picks_most_severe():
    def failure(kind):
        return RunFailure(
            request_id="x", label="", scenario="s", mode="als",
            kind=kind, attempts=1, message="",
        )

    assert sweep_exit_code([]) == 0
    assert sweep_exit_code([failure("degraded")]) == EXIT_CODES["degraded"]
    assert sweep_exit_code([failure("degraded"), failure("timeout")]) == EXIT_CODES["timeout"]
    assert (
        sweep_exit_code([failure("timeout"), failure("poison"), failure("crash")])
        == EXIT_CODES["poison"]
    )


def test_failures_sidecar_roundtrip(tmp_path):
    store_path = tmp_path / "runs.jsonl"
    sidecar = failures_path(store_path)
    assert sidecar.name == "runs.jsonl.failures"
    failures = [
        RunFailure(
            request_id="ab" * 6, label="a", scenario="s", mode="als",
            kind="poison", attempts=3, message="boom",
        ),
        RunFailure(
            request_id="cd" * 6, label="b", scenario="s", mode="als",
            kind="degraded", attempts=1, message="gave up",
        ),
    ]
    write_failures(sidecar, failures)
    assert load_failures(sidecar) == failures
    report = quarantine_report(failures)
    assert report["total"] == 2
    assert report["by_kind"] == {"degraded": 1, "poison": 1}
    # Empty list removes the sidecar (a healthy re-run cleans up after an
    # earlier failed one).
    write_failures(sidecar, [])
    assert not sidecar.exists()
    assert load_failures(sidecar) == []


# ---------------------------------------------------------------------------
# Supervised execution (child processes).
# ---------------------------------------------------------------------------

def test_supervised_success_matches_plain_execution(tmp_path):
    outcome = run_supervised(REQUEST, tmp_path)
    assert isinstance(outcome, RunRecord)
    assert _canonical(outcome) == _canonical(execute_request(REQUEST))


def test_supervised_retry_resumes_after_chaos_kill(tmp_path):
    chaos = ChaosConfig(seed=0, kill_probability=1.0)  # SIGKILL mid-run, once
    outcome = run_supervised(
        KILLABLE,
        tmp_path / "snaps",
        policy=SupervisorPolicy(checkpoint=CheckpointPolicy(every_cycles=25)),
        chaos=chaos,
        chaos_state_dir=tmp_path / "chaos",
    )
    assert isinstance(outcome, RunRecord)
    assert _canonical(outcome) == _canonical(execute_request(KILLABLE))


def test_supervised_poison_after_exhausted_retries(tmp_path):
    chaos = ChaosConfig(seed=0, kill_probability=1.0, once=False)  # every attempt
    outcome = run_supervised(
        KILLABLE,
        tmp_path / "snaps",
        policy=SupervisorPolicy(max_retries=2),
        chaos=chaos,
        chaos_state_dir=tmp_path / "chaos",
    )
    assert isinstance(outcome, RunFailure)
    assert outcome.kind == "poison"
    assert outcome.attempts == 3
    assert outcome.exit_code == EXIT_CODES["poison"]
    assert [d["attempt"] for d in outcome.detail] == [0, 1, 2]
    assert all(d["exit_code"] == -9 for d in outcome.detail)  # SIGKILLed


def test_supervised_zero_retries_keeps_underlying_kind(tmp_path):
    chaos = ChaosConfig(seed=0, kill_probability=1.0, once=False)
    outcome = run_supervised(
        KILLABLE,
        tmp_path / "snaps",
        policy=SupervisorPolicy(max_retries=0),
        chaos=chaos,
        chaos_state_dir=tmp_path / "chaos",
    )
    assert isinstance(outcome, RunFailure)
    assert outcome.kind == "crash"  # not escalated to poison: no retry burned
    assert outcome.attempts == 1


def test_supervised_timeout_kills_a_hung_run(tmp_path):
    chaos = ChaosConfig(
        seed=0, hang_probability=1.0, hang_seconds=60.0, once=False
    )
    outcome = run_supervised(
        KILLABLE,
        tmp_path / "snaps",
        policy=SupervisorPolicy(deadline=1.5, max_retries=1),
        chaos=chaos,
        chaos_state_dir=tmp_path / "chaos",
    )
    assert isinstance(outcome, RunFailure)
    assert outcome.kind == "poison"  # retried, hung again, quarantined
    assert all(d["status"] == "timeout" for d in outcome.detail)
    # The heartbeat told the watchdog how far the hung run got.
    assert any(d["last_committed"] is not None for d in outcome.detail)


def test_supervised_degradation_is_never_retried(tmp_path):
    outcome = run_supervised(
        DEGRADING, tmp_path, policy=SupervisorPolicy(max_retries=3)
    )
    assert isinstance(outcome, RunFailure)
    assert outcome.kind == "degraded"
    assert outcome.attempts == 1  # deterministic: retrying cannot help
    assert "channel degraded" in outcome.message
    assert outcome.exit_code == EXIT_CODES["degraded"]


def test_supervised_failure_record_is_deterministic(tmp_path):
    chaos = ChaosConfig(seed=3, kill_probability=1.0, once=False)

    def quarantine(subdir):
        outcome = run_supervised(
            KILLABLE,
            tmp_path / subdir / "snaps",
            policy=SupervisorPolicy(max_retries=1),
            chaos=chaos,
            chaos_state_dir=tmp_path / subdir / "chaos",
        )
        assert isinstance(outcome, RunFailure)
        return canonical_json(outcome.as_dict())

    assert quarantine("a") == quarantine("b")  # wall-clock free by design


# ---------------------------------------------------------------------------
# Batch supervision.
# ---------------------------------------------------------------------------

def test_batch_partitions_grid_into_records_and_failures(tmp_path):
    healthy = RunRequest(scenario="single_master", mode="conservative", cycles=80)
    requests = [healthy, DEGRADING, REQUEST]
    records, failures = run_supervised_batch(
        requests, tmp_path, policy=SupervisorPolicy(max_retries=1), jobs=2
    )
    assert [r.request_id for r in records] == [
        healthy.request_id, REQUEST.request_id
    ]  # grid order, failure excised
    assert [f.request_id for f in failures] == [DEGRADING.request_id]
    assert failures[0].kind == "degraded"
    serial = [execute_request(healthy), execute_request(REQUEST)]
    assert [_canonical(r) for r in records] == [_canonical(r) for r in serial]


def test_batch_cache_hits_bypass_supervision_and_fresh_runs_fill_it(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    warm = execute_request(REQUEST)
    cache.put(warm)
    hits_before = cache.stats.hits
    records, failures = run_supervised_batch([REQUEST], tmp_path / "snaps", cache=cache)
    assert not failures
    assert cache.stats.hits == hits_before + 1
    assert _canonical(records[0]) == _canonical(warm)

    other = RunRequest(scenario="single_master", mode="conservative", cycles=80)
    records, _ = run_supervised_batch([other], tmp_path / "snaps", cache=cache)
    assert cache.get(other) is not None  # fresh success written back
