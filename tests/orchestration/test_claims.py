"""Unit tests for the lease-file claim protocol."""

from __future__ import annotations

from repro.orchestration.claims import CORRUPT_OWNER, ClaimBoard, Lease


class FakeClock:
    """Injectable monotonic clock so expiry is driven, not slept for."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_board(tmp_path, owner, clock, ttl=10.0):
    return ClaimBoard(tmp_path / "claims", owner=owner, ttl=ttl, clock=clock)


# ---------------------------------------------------------------------------
# Claim / release basics.
# ---------------------------------------------------------------------------

def test_claim_is_exclusive_and_release_reopens(tmp_path):
    clock = FakeClock()
    alice = make_board(tmp_path, "alice", clock)
    bob = make_board(tmp_path, "bob", clock)
    assert alice.try_claim("r1")
    assert not bob.try_claim("r1")
    assert "r1" in alice.owned and "r1" not in bob.owned
    assert alice.release("r1")
    assert bob.try_claim("r1")
    assert alice.stats.claimed == 1 and alice.stats.released == 1
    assert bob.stats.claimed == 1


def test_lease_file_roundtrip(tmp_path):
    clock = FakeClock()
    alice = make_board(tmp_path, "alice", clock)
    alice.try_claim("r1")
    lease = alice.read("r1")
    assert lease == Lease("r1", "alice", 0, lease.stamp)
    assert alice.read("r2") is None
    assert set(alice.outstanding()) == {"r1"}


def test_heartbeat_increments_counter(tmp_path):
    clock = FakeClock()
    alice = make_board(tmp_path, "alice", clock)
    alice.try_claim("r1")
    assert alice.heartbeat("r1")
    assert alice.heartbeat("r1")
    assert alice.read("r1").heartbeat == 2


def test_try_acquire_is_idempotent_for_the_owner(tmp_path):
    clock = FakeClock()
    alice = make_board(tmp_path, "alice", clock)
    assert alice.try_acquire("r1") == "claimed"
    assert alice.try_acquire("r1") == "claimed"
    assert alice.stats.claimed == 1  # the second call found it already owned


# ---------------------------------------------------------------------------
# Expiry and stealing.
# ---------------------------------------------------------------------------

def test_steal_requires_a_full_observed_ttl(tmp_path):
    clock = FakeClock()
    alice = make_board(tmp_path, "alice", clock)
    bob = make_board(tmp_path, "bob", clock)
    alice.try_claim("r1")
    # First contact only starts bob's observation window.
    assert bob.try_acquire("r1") is None
    clock.advance(9.99)
    assert bob.try_acquire("r1") is None
    clock.advance(0.02)
    assert bob.try_acquire("r1") == "stolen"
    assert bob.stats.stolen == 1
    assert bob.read("r1").owner == "bob"


def test_heartbeat_resets_the_observation_window(tmp_path):
    clock = FakeClock()
    alice = make_board(tmp_path, "alice", clock)
    bob = make_board(tmp_path, "bob", clock)
    alice.try_claim("r1")
    assert bob.try_acquire("r1") is None
    clock.advance(8.0)
    alice.heartbeat("r1")
    clock.advance(8.0)
    # 16s since first sight, but the fingerprint changed 8s ago: not stealable.
    assert bob.try_acquire("r1") is None
    clock.advance(10.5)
    assert bob.try_acquire("r1") == "stolen"


def test_victim_discovers_the_theft(tmp_path):
    clock = FakeClock()
    alice = make_board(tmp_path, "alice", clock)
    bob = make_board(tmp_path, "bob", clock)
    alice.try_claim("r1")
    bob.try_acquire("r1")
    clock.advance(11.0)
    assert bob.try_acquire("r1") == "stolen"
    assert not alice.heartbeat("r1")
    assert "r1" not in alice.owned
    assert not alice.release("r1")
    assert alice.stats.lost == 2  # heartbeat and release each observed it


def test_corrupt_lease_blocks_then_expires(tmp_path):
    clock = FakeClock()
    bob = make_board(tmp_path, "bob", clock)
    (tmp_path / "claims").mkdir(parents=True)
    (tmp_path / "claims" / "r1.lease").write_text("{torn json")
    lease = bob.read("r1")
    assert lease.owner == CORRUPT_OWNER
    assert bob.try_acquire("r1") is None  # starts the observation window
    clock.advance(10.5)
    assert bob.try_acquire("r1") == "stolen"
    assert bob.read("r1").owner == "bob"


def test_released_lease_is_reacquired_not_stolen(tmp_path):
    clock = FakeClock()
    alice = make_board(tmp_path, "alice", clock)
    bob = make_board(tmp_path, "bob", clock)
    alice.try_claim("r1")
    bob.try_acquire("r1")
    alice.release("r1")
    assert bob.try_acquire("r1") == "claimed"
    assert bob.stats.stolen == 0


def test_sweep_completed_reaps_only_done_leases(tmp_path):
    clock = FakeClock()
    alice = make_board(tmp_path, "alice", clock)
    alice.try_claim("done-1")
    alice.try_claim("pending-1")
    reaper = make_board(tmp_path, "reaper", clock)
    reaped = reaper.sweep_completed(lambda rid: rid.startswith("done"))
    assert reaped == 1
    assert set(reaper.outstanding()) == {"pending-1"}


def test_steal_jitter_stretches_the_threshold_deterministically(tmp_path):
    clock = FakeClock()
    plain = ClaimBoard(tmp_path / "a", owner="alice", ttl=10.0, clock=clock)
    assert plain.steal_after == 10.0  # no jitter: threshold is exactly the ttl
    jittered = ClaimBoard(
        tmp_path / "b", owner="alice", ttl=10.0, clock=clock, steal_jitter=0.25
    )
    again = ClaimBoard(
        tmp_path / "c", owner="alice", ttl=10.0, clock=clock, steal_jitter=0.25
    )
    assert 10.0 <= jittered.steal_after <= 12.5
    assert jittered.steal_after == again.steal_after  # same owner, same stretch


def test_ttl_must_be_positive(tmp_path):
    import pytest

    with pytest.raises(ValueError):
        ClaimBoard(tmp_path, ttl=0.0)
