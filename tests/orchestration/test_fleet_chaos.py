"""Fleet durability under chaos: steal-resume, drain, poison quarantine.

The acceptance bar stays byte-identity: whatever chaos does to the workers
-- SIGKILL mid-run, hangs past the lease TTL, graceful SIGTERM drains --
the reconciled records must carry exactly the bytes a serial
``BatchRunner(jobs=1)`` sweep produces, with failures quarantined into
sidecar files rather than leaking into the store.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.orchestration import (
    BatchRunner,
    ChaosConfig,
    CheckpointPolicy,
    RunStore,
    grid_requests,
    load_quarantine,
    plan_for,
    publish_grid,
    run_fleet,
    sweep_id_for,
)
from repro.orchestration.fleet import (
    FleetWorkerStats,
    _worker_entry,
    claims_dir,
    load_worker_stats,
    snapshots_dir,
)
from repro.orchestration.request import canonical_json


def _bytes(records):
    return "".join(canonical_json(r.as_dict()) + "\n" for r in records)


# ---------------------------------------------------------------------------
# Chaos kill + hang: the fleet steals, resumes and stays byte-identical.
# ---------------------------------------------------------------------------

def test_fleet_survives_chaos_kills_and_hangs_byte_identical(tmp_path):
    grid = grid_requests(
        scenarios=["als_streaming", "mixed", "single_master"],
        modes=["conservative", "als"],
        cycles=180,
    )
    serial = BatchRunner(jobs=1).run(grid)
    # Seed 7 is pinned because its schedule is interesting: it kills and
    # hangs a mix of points (the plan is a pure function of the seed and the
    # request ids, so this stays stable unless the grid changes).
    chaos = ChaosConfig(
        seed=7, kill_probability=0.25, hang_probability=0.25, hang_seconds=6.0
    )
    planned = {
        r.request_id: plan_for(chaos, r.request_id, r.cycles).action for r in grid
    }
    assert "kill" in planned.values() and "hang" in planned.values()

    store = RunStore(tmp_path / "runs.jsonl")
    records, stats = run_fleet(
        grid,
        cache_dir=tmp_path / "cache",
        workers=2,
        store=store,
        ttl=1.0,
        poll_interval=0.1,
        checkpoint=CheckpointPolicy(every_cycles=30),
        chaos=chaos,
    )
    assert _bytes(records) == _bytes(serial)
    assert store.path.read_text().count("\n") == len(grid)
    assert not load_quarantine(tmp_path / "cache", stats.sweep_id)
    assert stats.restarts >= 1  # SIGKILLed workers were replaced
    resumed = sum(w.resumed for w in stats.workers)
    assert resumed >= 1  # a killed point was picked up from its snapshot
    stolen = sum(w.stolen for w in stats.workers)
    assert stolen >= 1  # a hung worker's lease was stolen


# ---------------------------------------------------------------------------
# Poison quarantine: a point that dies on every attempt stops eating the fleet.
# ---------------------------------------------------------------------------

def test_fleet_quarantines_poison_points_and_finishes_the_rest(tmp_path):
    grid = grid_requests(
        scenarios=["als_streaming", "single_master"],
        modes=["conservative"],
        cycles=150,
    )
    serial = BatchRunner(jobs=1).run(grid)
    # once=False: the kill re-fires on every retry -> retries exhaust.
    chaos = ChaosConfig(seed=11, kill_probability=0.45, once=False)
    doomed = [
        r.request_id
        for r in grid
        if plan_for(chaos, r.request_id, r.cycles).action == "kill"
    ]
    assert doomed and len(doomed) < len(grid)

    records, stats = run_fleet(
        grid,
        cache_dir=tmp_path / "cache",
        workers=2,
        ttl=1.0,
        poll_interval=0.1,
        chaos=chaos,
        max_retries=2,
        max_restarts=16,
    )
    failures = load_quarantine(tmp_path / "cache", stats.sweep_id)
    assert sorted(f.request_id for f in failures) == sorted(doomed)
    assert all(f.kind == "poison" for f in failures)
    assert all(f.attempts == 3 for f in failures)  # 1 try + max_retries
    assert stats.quarantined == len(doomed)
    assert "quarantined" in stats.summary()
    healthy = [r for r in serial if r.request_id not in doomed]
    assert _bytes(records) == _bytes(healthy)


# ---------------------------------------------------------------------------
# Graceful drain: SIGTERM persists progress and releases every lease.
# ---------------------------------------------------------------------------

def test_worker_drains_on_sigterm_releasing_leases_and_snapshotting(tmp_path):
    grid = grid_requests(
        scenarios=["als_streaming", "mixed", "dma_burst_storm"],
        modes=["als"],
        cycles=3000,
    )
    publish_grid(tmp_path, grid)
    context = multiprocessing.get_context()
    worker = context.Process(
        target=_worker_entry,
        args=(str(tmp_path), "drainee", 5.0, 0.1, None, (50, None), None, 2, True),
    )
    worker.start()
    time.sleep(1.5)  # let it claim a point and get mid-run
    os.kill(worker.pid, signal.SIGTERM)
    worker.join(timeout=30)
    assert worker.exitcode == 0  # drained, not killed

    leases = list(claims_dir(tmp_path).glob("*.lease"))
    assert leases == []  # nothing left claimed for others to steal
    stats = load_worker_stats(tmp_path, sweep_id_for(grid))
    assert stats and stats[0].drained >= 1
    # The parting snapshot lets a successor resume mid-run.  (Tolerate the
    # rare schedule where the signal landed between points: then the worker
    # simply had nothing in flight to snapshot.)
    snapshots = list(snapshots_dir(tmp_path).glob("*.snap"))
    executed = stats[0].executed
    assert snapshots or executed == len(grid)

    # A successor finishes the grid bit-identically, resuming where the
    # drained worker stopped.
    from repro.orchestration import ResultCache, run_worker

    run_worker(tmp_path, owner="successor", ttl=5.0, poll_interval=0.1,
               checkpoint=CheckpointPolicy(every_cycles=50))
    cache = ResultCache(tmp_path)
    serial = BatchRunner(jobs=1).run(grid)
    cached = [cache.get(r) for r in grid]
    assert all(c is not None for c in cached)
    assert _bytes(cached) == _bytes(serial)


# ---------------------------------------------------------------------------
# Stats plumbing.
# ---------------------------------------------------------------------------

def test_worker_stats_roundtrip_durability_counters():
    stats = FleetWorkerStats(
        owner="w1", executed=3, resumed=2, retried=1, quarantined=1, drained=1
    )
    payload = stats.as_dict()
    for key in ("resumed", "retried", "quarantined", "drained"):
        assert payload[key] == getattr(stats, key)
    assert FleetWorkerStats.from_dict(payload) == stats
    # Stats written by a pre-durability worker still load (missing counters
    # default to zero) -- mixed-version fleets must not crash reconciliation.
    legacy = {k: v for k, v in payload.items()
              if k not in ("resumed", "retried", "quarantined", "drained")}
    loaded = FleetWorkerStats.from_dict(legacy)
    assert loaded.executed == 3 and loaded.resumed == 0
