"""Tests for atomic store writes, tolerant loading and sweep resume."""

from __future__ import annotations

import logging

import pytest

from repro.orchestration import (
    BatchRunner,
    RunRequest,
    RunStore,
    execute_request,
    grid_requests,
    plan_resume,
)
from repro.orchestration.store import (
    atomic_write_text,
    canonical_line,
    parse_record_line,
)


@pytest.fixture(scope="module")
def grid():
    return grid_requests(
        scenarios=["single_master", "mixed"],
        modes=["conservative", "als"],
        cycles=80,
    )


@pytest.fixture(scope="module")
def grid_records(grid):
    return BatchRunner(jobs=1).run(grid)


# ---------------------------------------------------------------------------
# Atomic writes.
# ---------------------------------------------------------------------------

def test_atomic_write_leaves_no_temp_files(tmp_path):
    path = tmp_path / "nested" / "store.jsonl"
    atomic_write_text(path, "hello\n")
    assert path.read_text() == "hello\n"
    assert [p.name for p in path.parent.iterdir()] == ["store.jsonl"]


def test_write_replaces_and_append_extends_without_tmp_leftovers(
    tmp_path, grid_records
):
    store = RunStore(tmp_path / "runs.jsonl")
    store.write(grid_records[:2])
    store.append(grid_records[2:])
    assert len(store) == len(grid_records)
    assert [p.name for p in tmp_path.iterdir()] == ["runs.jsonl"]
    assert [r.as_dict() for r in store] == [r.as_dict() for r in grid_records]


def test_append_seals_a_pre_existing_torn_tail(tmp_path, grid_records):
    path = tmp_path / "runs.jsonl"
    torn = canonical_line(grid_records[0])[:40]
    path.write_text(torn)  # no trailing newline: a torn non-atomic write
    store = RunStore(path)
    store.append([grid_records[1]])
    records, skipped = store.load_valid()
    assert skipped == 1
    assert [r.as_dict() for r in records] == [grid_records[1].as_dict()]


def test_load_valid_skips_torn_and_tampered_lines(tmp_path, grid_records):
    path = tmp_path / "runs.jsonl"
    good = canonical_line(grid_records[0])
    tampered = canonical_line(grid_records[1]).replace(
        '"monitors_ok":true', '"monitors_ok":false'
    )
    path.write_text(good + "\n" + tampered + "\n" + good[: len(good) // 3] + "\n")
    records, skipped = RunStore(path).load_valid()
    assert skipped == 2
    assert [r.as_dict() for r in records] == [grid_records[0].as_dict()]


def test_scan_reports_byte_offsets_of_damaged_lines(tmp_path, grid_records):
    path = tmp_path / "runs.jsonl"
    good = canonical_line(grid_records[0])
    tampered = canonical_line(grid_records[1]).replace(
        '"monitors_ok":true', '"monitors_ok":false'
    )
    torn_tail = good[: len(good) // 3]
    path.write_text(good + "\n" + tampered + "\n" + torn_tail + "\n")
    scan = RunStore(path).scan()
    assert [r.as_dict() for r in scan.records] == [grid_records[0].as_dict()]
    assert scan.torn_records == 2
    good_bytes = len((good + "\n").encode("utf-8"))
    tampered_bytes = len((tampered + "\n").encode("utf-8"))
    assert [line.offset for line in scan.torn] == [
        good_bytes,
        good_bytes + tampered_bytes,
    ]
    assert scan.torn[0].length == tampered_bytes
    assert all(line.reason for line in scan.torn)


def test_scan_logs_a_warning_per_damaged_line(tmp_path, grid_records, caplog):
    path = tmp_path / "runs.jsonl"
    good = canonical_line(grid_records[0])
    path.write_text(good + "\n" + good[:25] + "\n")
    with caplog.at_level(logging.WARNING, logger="repro.orchestration.store"):
        records, skipped = RunStore(path).load_valid()
    assert len(records) == 1 and skipped == 1
    warnings = [r for r in caplog.records if r.levelno == logging.WARNING]
    assert len(warnings) == 1
    message = warnings[0].getMessage()
    assert "byte offset" in message
    assert str(len((good + "\n").encode("utf-8"))) in message


def test_scan_of_a_clean_or_missing_store_logs_nothing(
    tmp_path, grid_records, caplog
):
    clean = RunStore(tmp_path / "clean.jsonl")
    clean.write(grid_records[:2])
    with caplog.at_level(logging.WARNING, logger="repro.orchestration.store"):
        assert clean.scan().torn == []
        assert RunStore(tmp_path / "absent.jsonl").scan().records == []
    assert caplog.records == []


def test_parse_record_line_rejects_garbage():
    with pytest.raises(ValueError):
        parse_record_line("{torn")
    with pytest.raises(ValueError):
        parse_record_line('"a string, not an object"')
    with pytest.raises(ValueError):
        parse_record_line('{"unexpected":"shape"}')


# ---------------------------------------------------------------------------
# plan_resume: reconcile a partial store against the grid.
# ---------------------------------------------------------------------------

def test_plan_resume_empty_store_runs_everything(tmp_path, grid):
    plan = plan_resume(grid, RunStore(tmp_path / "missing.jsonl"))
    assert plan.reusable == {}
    assert [r.request_id for r in plan.missing] == [r.request_id for r in grid]


def test_plan_resume_partial_store(tmp_path, grid, grid_records):
    store = RunStore(tmp_path / "runs.jsonl")
    store.write(grid_records[:2])
    plan = plan_resume(grid, store)
    assert set(plan.reusable) == {r.request_id for r in grid_records[:2]}
    assert [r.request_id for r in plan.missing] == [
        r.request_id for r in grid[2:]
    ]
    assert plan.extra == 0 and plan.skipped == 0


def test_plan_resume_ignores_unrelated_records(tmp_path, grid, grid_records):
    extra = execute_request(
        RunRequest(scenario="single_master", mode="conservative", cycles=33)
    )
    store = RunStore(tmp_path / "runs.jsonl")
    store.write([extra] + grid_records[:1])
    plan = plan_resume(grid, store)
    assert set(plan.reusable) == {grid_records[0].request_id}
    assert plan.extra == 1


def test_resumed_store_is_byte_identical_to_uninterrupted(
    tmp_path, grid, grid_records
):
    full = RunStore(tmp_path / "full.jsonl")
    full.write(grid_records)
    # interrupt after 2 records, with the 3rd torn mid-line
    partial_path = tmp_path / "partial.jsonl"
    lines = [canonical_line(r) for r in grid_records]
    partial_path.write_text(
        lines[0] + "\n" + lines[1] + "\n" + lines[2][: len(lines[2]) // 2]
    )
    partial = RunStore(partial_path)
    plan = plan_resume(grid, partial)
    assert len(plan.reusable) == 2
    assert len(plan.missing) == 2
    assert plan.skipped == 1
    # The plan carries where the damage sits, so drivers can point at it.
    assert plan.torn_offsets == [
        len((lines[0] + "\n" + lines[1] + "\n").encode("utf-8"))
    ]
    executed = BatchRunner(jobs=1).run(plan.missing)
    by_id = dict(plan.reusable)
    for record in executed:
        by_id[record.request_id] = record
    partial.write([by_id[request.request_id] for request in grid])
    assert partial.digest() == full.digest()
