"""Test package (enables relative imports across test modules)."""
