"""Tests for the paper-artifact pipeline (specs, determinism, file output)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.artifacts import (
    canonical_cell,
    default_specs,
    figure4_spec,
    mechanism_spec,
    render_csv,
    render_json,
    run_pipeline,
    table2_spec,
    write_artifacts,
)
from repro.core.analytical import PAPER_ALS_MAX_GAIN_1000K
from repro.orchestration import ResultCache

#: The cheap artifact subset used by most tests: two analytical grids plus
#: the smallest mechanism scenario.
FAST = ("table2", "figure4", "mechanism_single_master")


@pytest.fixture(scope="module")
def fast_result():
    return run_pipeline(quick=True, names=FAST)


# ---------------------------------------------------------------------------
# Specs.
# ---------------------------------------------------------------------------

def test_default_specs_cover_paper_artifacts_and_catalog_scenarios():
    names = [spec.name for spec in default_specs(quick=True)]
    assert names[:2] == ["table2", "figure4"]
    assert "mechanism_als_streaming" in names
    assert "mechanism_mixed" in names
    assert "mechanism_single_master" in names


def test_quick_grids_are_subsets_of_full_grids():
    for factory in (table2_spec, figure4_spec):
        quick_ids = {r.request_id for r in factory(True).requests}
        full_ids = {r.request_id for r in factory(False).requests}
        assert quick_ids < full_ids
    # mechanism quick grids use fewer cycles, so they are disjoint on purpose
    assert len(mechanism_spec("single_master", True).requests) < len(
        mechanism_spec("single_master", False).requests
    )


def test_mechanism_spec_rejects_scenarios_without_artifact():
    with pytest.raises(LookupError):
        mechanism_spec("dma_burst_storm")


def test_run_pipeline_rejects_unknown_artifact_names():
    with pytest.raises(LookupError, match="bogus"):
        run_pipeline(quick=True, names=["table2", "bogus"])


# ---------------------------------------------------------------------------
# Pipeline results.
# ---------------------------------------------------------------------------

def test_table2_artifact_reproduces_the_headline_gain(fast_result):
    table2 = fast_result.artifacts[0]
    assert table2.name == "table2"
    by_accuracy = {row[0]: row for row in table2.rows}
    ratio = by_accuracy[1.0][table2.headers.index("ratio")]
    assert abs(ratio - PAPER_ALS_MAX_GAIN_1000K) / PAPER_ALS_MAX_GAIN_1000K < 0.05
    performances = [row[table2.headers.index("performance")] for row in table2.rows]
    assert performances == sorted(performances, reverse=True)


def test_figure4_artifact_series_shapes(fast_result):
    figure4 = fast_result.artifacts[1]
    series = {}
    for row in figure4.rows:
        series.setdefault(row[0], []).append(row)
    assert len(series) == 4
    for rows in series.values():
        performances = [row[figure4.headers.index("performance")] for row in rows]
        assert performances == sorted(performances, reverse=True)
    # deeper LOB wins at p=1, loses at the lowest accuracy (paper Figure 4)
    deep = series["Sim=1000k, LOBdepth=64"]
    shallow = series["Sim=1000k, LOBdepth=8"]
    perf = figure4.headers.index("performance")
    assert deep[0][perf] > shallow[0][perf]
    assert deep[-1][perf] < shallow[-1][perf]


def test_mechanism_artifact_has_conventional_baseline_row(fast_result):
    mechanism = fast_result.artifacts[2]
    assert mechanism.rows[0][0] == "conservative"
    gain = mechanism.headers.index("gain")
    assert mechanism.rows[0][gain] == 1.0
    assert all(row[mechanism.headers.index("monitors_ok")] for row in mechanism.rows)


def test_pipeline_is_deterministic_across_jobs(fast_result):
    again = run_pipeline(quick=True, names=FAST, jobs=2)
    assert [a.name for a in again.artifacts] == [a.name for a in fast_result.artifacts]
    for left, right in zip(fast_result.artifacts, again.artifacts):
        assert render_csv(left) == render_csv(right)
        assert render_json(left) == render_json(right)


def test_pipeline_warm_cache_executes_nothing(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path / "cache")
    cold = run_pipeline(quick=True, names=FAST, cache=cache)
    assert cold.executed == cold.total_requests
    assert cold.cache_hits == 0

    def explode(request):
        raise AssertionError("engine executed on a warm cache")

    monkeypatch.setattr("repro.orchestration.runner.execute_request", explode)
    warm = run_pipeline(quick=True, names=FAST, cache=cache)
    assert warm.executed == 0
    assert warm.cache_hits == warm.total_requests == cold.total_requests
    for left, right in zip(cold.artifacts, warm.artifacts):
        assert render_csv(left) == render_csv(right)


def test_shared_requests_are_deduplicated():
    # table2 and figure4 share the analytical conventional baseline at the
    # default simulator speed; the pipeline must run it once, not twice.
    result = run_pipeline(quick=True, names=["table2", "figure4"])
    table2_ids = {r.request_id for r in table2_spec(True).requests}
    figure4_ids = {r.request_id for r in figure4_spec(True).requests}
    assert result.total_requests == len(table2_ids | figure4_ids)
    assert result.total_requests < len(table2_ids) + len(figure4_ids)


# ---------------------------------------------------------------------------
# Canonical rendering and file output.
# ---------------------------------------------------------------------------

def test_canonical_cell_formats():
    assert canonical_cell(1.5) == "1.5"
    assert canonical_cell(2.0) == "2.0"
    assert canonical_cell(None) == ""
    assert canonical_cell("label") == "label"
    assert canonical_cell(7) == "7"
    assert canonical_cell(True) == "True"


def test_write_artifacts_emits_csv_json_and_manifest(tmp_path, fast_result):
    out = tmp_path / "artifacts"
    manifest = write_artifacts(fast_result.artifacts, out)
    names = sorted(p.name for p in out.iterdir())
    assert "MANIFEST.json" in names
    for artifact in fast_result.artifacts:
        assert (out / f"{artifact.name}.csv").read_text() == render_csv(artifact)
        assert (out / f"{artifact.name}.json").read_text() == render_json(artifact)
        assert f"{artifact.name}.csv" in manifest
    written = json.loads((out / "MANIFEST.json").read_text())
    assert written == manifest


def test_write_artifacts_twice_is_byte_identical(tmp_path, fast_result):
    first = tmp_path / "first"
    second = tmp_path / "second"
    write_artifacts(fast_result.artifacts, first)
    write_artifacts(fast_result.artifacts, second)
    for path in sorted(first.iterdir()):
        assert path.read_bytes() == (second / path.name).read_bytes()


def test_artifact_json_round_trips(fast_result):
    for artifact in fast_result.artifacts:
        payload = json.loads(render_json(artifact))
        assert payload["name"] == artifact.name
        assert payload["headers"] == list(artifact.headers)
        assert payload["rows"] == [list(row) for row in artifact.rows]
