"""Unit tests for report rendering."""

from __future__ import annotations

from repro.analysis.report import (
    Series,
    format_quantity,
    render_ascii_chart,
    render_comparison,
    render_table,
    render_transposed_table,
)


def test_format_quantity_styles():
    assert format_quantity(0) == "0"
    assert "e" in format_quantity(1.23e-6)
    assert format_quantity(123456) == "123,456"
    assert format_quantity(3.14159) == "3.14"


def test_render_table_alignment_and_title():
    text = render_table(
        ["name", "value"],
        [["alpha", 1.0], ["beta", 123456.0]],
        title="My Table",
    )
    lines = text.splitlines()
    assert lines[0] == "My Table"
    assert "name" in lines[1] and "value" in lines[1]
    assert "alpha" in text and "123,456" in text
    # header separator present
    assert set(lines[2].replace(" ", "")) == {"-"}


def test_render_transposed_table_keys_become_columns():
    text = render_transposed_table(
        row_labels=["Tsim", "Tacc"],
        columns={"p=1.0": [1e-6, 1e-7], "p=0.9": [1e-6, 5e-7]},
        title="Table 2",
    )
    assert "p=1.0" in text and "p=0.9" in text
    assert "Tsim" in text and "Tacc" in text


def test_render_ascii_chart_contains_markers_and_legend():
    series = [
        Series(label="deep", x=[1.0, 0.5, 0.1], y=[100.0, 50.0, 10.0], marker="D"),
        Series(label="shallow", x=[1.0, 0.5, 0.1], y=[80.0, 60.0, 30.0], marker="s"),
    ]
    chart = render_ascii_chart(
        series,
        width=40,
        height=10,
        title="Figure 4",
        x_label="accuracy",
        y_label="cycles/s",
        reference_lines={"conventional": 40.0},
    )
    assert "Figure 4" in chart
    assert "D=deep" in chart and "s=shallow" in chart
    assert "conventional" in chart
    assert "D" in chart and "s" in chart
    assert chart.count("\n") >= 12


def test_render_ascii_chart_empty_and_flat_series():
    assert render_ascii_chart([], width=10, height=5) == "(no data)"
    flat = render_ascii_chart(
        [Series(label="flat", x=[1.0, 0.5], y=[5.0, 5.0])], width=10, height=5
    )
    assert "flat" in flat


def test_render_comparison_rows():
    rows = [
        {"name": "gain", "paper": 16.75, "measured": 16.5, "ratio": 0.985, "relative_error": 0.015},
    ]
    text = render_comparison("Comparison", rows)
    assert "gain" in text and "0.98x" in text and "1.5%" in text
