"""Unit tests for metric helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.metrics import (
    ComparisonRow,
    PaperComparison,
    crossover_accuracy,
    geometric_mean,
    monotonically_non_increasing,
    relative_error,
    speedup,
    summarize_counts,
    within_factor,
)


def test_speedup_and_zero_baseline():
    assert speedup(200.0, 100.0) == pytest.approx(2.0)
    assert math.isinf(speedup(1.0, 0.0))


def test_relative_error_cases():
    assert relative_error(110.0, 100.0) == pytest.approx(0.1)
    assert relative_error(0.0, 0.0) == 0.0
    assert math.isinf(relative_error(1.0, 0.0))


def test_within_factor():
    assert within_factor(90.0, 100.0, 1.2)
    assert within_factor(120.0, 100.0, 1.2)
    assert not within_factor(200.0, 100.0, 1.5)
    assert not within_factor(-1.0, 100.0, 1.5)
    assert not within_factor(100.0, 100.0, 0.5)


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([0.0, -1.0]) == 0.0


def test_comparison_row_derived_fields():
    row = ComparisonRow(name="perf", paper_value=100.0, measured_value=120.0)
    assert row.ratio == pytest.approx(1.2)
    assert row.error == pytest.approx(0.2)
    assert row.as_dict()["name"] == "perf"


def test_paper_comparison_from_mappings_and_summaries():
    comparison = PaperComparison.from_mappings(
        "t",
        paper={"a": 10.0, "b": 20.0, "missing": 5.0},
        measured={"a": 11.0, "b": 30.0},
    )
    assert len(comparison.rows) == 2
    assert comparison.max_error() == pytest.approx(0.5)
    assert comparison.mean_error() == pytest.approx((0.1 + 0.5) / 2)
    assert comparison.worst_row().name == "b"
    assert comparison.all_within(0.6)
    assert not comparison.all_within(0.2)


def test_crossover_accuracy_interpolates():
    accuracies = [1.0, 0.8, 0.6, 0.4, 0.2]
    performances = [200.0, 160.0, 120.0, 80.0, 40.0]
    crossing = crossover_accuracy(accuracies, performances, threshold=100.0)
    assert crossing == pytest.approx(0.5, abs=0.01)


def test_crossover_returns_none_when_never_crossing():
    assert crossover_accuracy([1.0, 0.5], [10.0, 5.0], threshold=1.0) is None
    with pytest.raises(ValueError):
        crossover_accuracy([1.0], [1.0, 2.0], threshold=1.0)


def test_monotonically_non_increasing():
    assert monotonically_non_increasing([5.0, 4.0, 4.0, 1.0])
    assert not monotonically_non_increasing([1.0, 2.0])
    assert monotonically_non_increasing([])


def test_summarize_counts_sorted_rendering():
    assert summarize_counts({"b": 2, "a": 1}) == "a=1, b=2"
