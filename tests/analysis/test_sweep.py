"""Tests for the mechanism-level sweep helpers."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import (
    accuracy_sweep_mechanism,
    lob_depth_sweep,
    mode_comparison,
    rows_from_points,
    run_engine,
)
from repro.core import CoEmulationConfig, OperatingMode
from repro.workloads import als_streaming_soc


@pytest.fixture(scope="module")
def spec():
    return als_streaming_soc(n_bursts=6)


@pytest.fixture(scope="module")
def base_config():
    return CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=200)


def test_run_engine_dispatches_on_mode(spec, base_config):
    from dataclasses import replace

    optimistic = run_engine(spec, base_config)
    conventional = run_engine(spec, replace(base_config, mode=OperatingMode.CONSERVATIVE))
    assert optimistic.mode is OperatingMode.ALS
    assert conventional.mode is OperatingMode.CONSERVATIVE
    assert optimistic.performance_cycles_per_second > conventional.performance_cycles_per_second


def test_accuracy_sweep_mechanism_produces_decreasing_performance(spec, base_config):
    points = accuracy_sweep_mechanism(spec, base_config, [1.0, 0.8, 0.4])
    perfs = [p.result.performance_cycles_per_second for p in points]
    assert len(points) == 3
    assert perfs[0] > perfs[-1]
    assert points[0].label == "p=1"


def test_lob_depth_sweep_reports_configured_depths(spec, base_config):
    points = lob_depth_sweep(spec, base_config, [8, 64])
    assert [p.config.lob_depth for p in points] == [8, 64]
    assert all(p.result.committed_cycles >= 200 for p in points)


def test_mode_comparison_runs_all_requested_modes(spec, base_config):
    results = mode_comparison(
        spec, base_config, modes=(OperatingMode.CONSERVATIVE, OperatingMode.ALS)
    )
    assert set(results) == {OperatingMode.CONSERVATIVE, OperatingMode.ALS}


def test_rows_from_points_flatten_results(spec, base_config):
    points = accuracy_sweep_mechanism(spec, base_config, [1.0])
    rows = rows_from_points(points)
    assert rows[0]["label"] == "p=1"
    assert rows[0]["lob_depth"] == base_config.lob_depth
    assert "performance" in rows[0]
