"""Tests for the channel-degradation sweeps."""

from __future__ import annotations

import pytest

from repro.analysis.degradation import (
    DegradationPoint,
    accuracy_loss_grid,
    degradation_rows,
    loss_rate_sweep,
)
from repro.channel.faults import ChannelFaultConfig
from repro.core import CoEmulationConfig, OperatingMode
from repro.workloads.catalog import build_scenario


@pytest.fixture(scope="module")
def spec():
    return build_scenario("mixed")


@pytest.fixture(scope="module")
def base_config():
    return CoEmulationConfig(total_cycles=150)


def test_loss_rate_sweep_covers_modes_and_rates(spec, base_config):
    faults = ChannelFaultConfig(max_attempts=20, seed=3)
    points = loss_rate_sweep(spec, base_config, [0.0, 0.05], base_faults=faults)
    assert len(points) == 4  # 2 modes x 2 rates
    assert {p.mode for p in points} == {"conservative", "als"}
    assert not any(p.gave_up for p in points)


def test_loss_degrades_performance_relative_to_zero_loss(spec, base_config):
    faults = ChannelFaultConfig(max_attempts=20, seed=3)
    points = loss_rate_sweep(spec, base_config, [0.0, 0.1], base_faults=faults)
    for mode in ("conservative", "als"):
        series = [p for p in points if p.mode == mode]
        assert series[0].relative_performance == pytest.approx(1.0)
        assert series[1].relative_performance < 1.0
        assert series[1].retransmissions > 0


def test_als_suffers_fewer_absolute_retransmissions(spec, base_config):
    """The robustness corollary: fewer accesses, fewer faults to pay for."""
    faults = ChannelFaultConfig(max_attempts=20, seed=3)
    points = loss_rate_sweep(spec, base_config, [0.1], base_faults=faults)
    cons = next(p for p in points if p.mode == "conservative")
    als = next(p for p in points if p.mode == "als")
    assert als.channel_accesses < cons.channel_accesses
    assert als.retransmissions < cons.retransmissions


def test_dead_link_reports_gave_up_instead_of_deadlocking(spec, base_config):
    faults = ChannelFaultConfig(max_attempts=3, seed=3)
    points = loss_rate_sweep(
        spec,
        base_config,
        [1.0],
        modes=(OperatingMode.CONSERVATIVE,),
        base_faults=faults,
    )
    assert len(points) == 1
    assert points[0].gave_up
    assert points[0].performance == 0.0
    assert points[0].relative_performance == 0.0


def test_accuracy_loss_grid_anchors_each_accuracy_row(spec, base_config):
    faults = ChannelFaultConfig(max_attempts=20, seed=3)
    points = accuracy_loss_grid(
        spec, base_config, [1.0, 0.7], [0.0, 0.05], base_faults=faults
    )
    assert len(points) == 4
    for accuracy in (1.0, 0.7):
        row = [p for p in points if p.accuracy == accuracy]
        assert row[0].relative_performance == pytest.approx(1.0)
        assert row[1].relative_performance < 1.0


def test_degradation_rows_round_trip(spec, base_config):
    faults = ChannelFaultConfig(max_attempts=20, seed=3)
    points = loss_rate_sweep(
        spec, base_config, [0.0], modes=(OperatingMode.ALS,), base_faults=faults
    )
    rows = degradation_rows(points)
    assert rows == [points[0].row()]
    assert set(rows[0]) >= {
        "mode", "loss_rate", "performance", "relative_performance",
        "retransmissions", "gave_up",
    }


def test_point_is_plain_data():
    point = DegradationPoint(
        mode="als", loss_rate=0.1, accuracy=None, performance=1.0,
        channel_accesses=2, retransmissions=3, drops=4, rollbacks=5,
        total_time=6.0,
    )
    assert point.row()["drops"] == 4
