"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.ahb import BusTransaction, HBurst, MemorySlave, TrafficMaster
from repro.core import CoEmulationConfig, OperatingMode
from repro.workloads import (
    AddressWindow,
    als_streaming_soc,
    single_master_soc,
    sla_streaming_soc,
    mixed_soc,
)


@pytest.fixture
def small_window() -> AddressWindow:
    return AddressWindow(base=0x1000, size=0x400)


@pytest.fixture
def simple_write_read_master() -> TrafficMaster:
    """A master that writes a 4-beat burst then reads it back."""
    return TrafficMaster(
        "m0",
        0,
        [
            BusTransaction(0, 0x100, True, HBurst.INCR4, data=[10, 20, 30, 40]),
            BusTransaction(0, 0x100, False, HBurst.INCR4),
        ],
    )


@pytest.fixture
def small_memory() -> MemorySlave:
    return MemorySlave("mem", 1, base_address=0x0, size_bytes=0x1000)


@pytest.fixture
def als_spec():
    return als_streaming_soc(n_bursts=8)


@pytest.fixture
def sla_spec():
    return sla_streaming_soc(n_bursts=8)


@pytest.fixture
def mixed_spec():
    return mixed_soc(n_transactions=16)


@pytest.fixture
def single_master_spec():
    return single_master_soc(n_bursts=6)


@pytest.fixture
def short_als_config() -> CoEmulationConfig:
    return CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=300)


@pytest.fixture
def short_conservative_config() -> CoEmulationConfig:
    return CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=300)
