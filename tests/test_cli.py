"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


def test_table2_command_prints_paper_comparison(capsys):
    out = run_cli(capsys, "table2")
    assert "Table 2" in out
    assert "1.000" in out and "0.100" in out
    assert "ratio (paper)" in out


def test_figure4_command_prints_chart_with_legend(capsys):
    out = run_cli(capsys, "figure4")
    assert "Figure 4" in out
    assert "LOBdepth=64" in out and "LOBdepth=8" in out
    assert "conventional" in out


def test_sla_command(capsys):
    out = run_cli(capsys, "sla")
    assert "SLA" in out
    assert "break-even" in out


def test_conventional_command(capsys):
    out = run_cli(capsys, "conventional")
    assert "38.8k" in out or "38.9k" in out
    assert "28.8k" in out


def test_mechanism_command_small_sweep(capsys):
    out = run_cli(
        capsys, "mechanism", "--cycles", "120", "--accuracies", "1.0", "0.8"
    )
    assert "Mechanism-level" in out
    assert "conventional" in out
    assert "p=1" in out and "p=0.8" in out


def test_run_command_reports_breakdown(capsys):
    out = run_cli(capsys, "run", "--cycles", "150", "--mode", "als")
    assert "performance" in out
    assert "monitors clean" in out
    assert "True" in out


def test_run_command_conservative_mode(capsys):
    out = run_cli(capsys, "run", "--cycles", "100", "--mode", "conservative")
    assert "conservative" in out


def test_run_command_profile_dumps_pstats(capsys, tmp_path):
    import pstats

    target = tmp_path / "engine.pstats"
    out = run_cli(
        capsys, "run", "--cycles", "120", "--mode", "als", "--profile", str(target)
    )
    assert "performance" in out  # the normal run still happens and reports
    assert target.exists()
    stats = pstats.Stats(str(target))
    assert stats.total_calls > 0  # the engine loop was actually profiled


def test_run_command_profile_top_table_on_stderr(capsys, tmp_path):
    target = tmp_path / "engine.pstats"
    code = main(
        ["run", "--cycles", "120", "--mode", "als",
         "--profile", str(target), "--profile-top", "5"]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "Top 5 functions by cumulative time" in captured.err
    assert "cumtime" in captured.err
    assert "performance" in captured.out  # the run itself still reports


def test_run_command_profile_top_zero_disables_table(capsys, tmp_path):
    target = tmp_path / "engine.pstats"
    code = main(
        ["run", "--cycles", "120", "--mode", "als",
         "--profile", str(target), "--profile-top", "0"]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "by cumulative time" not in captured.err
    assert target.exists()  # the dump itself is unaffected


def test_run_command_batch_engine(capsys):
    out = run_cli(
        capsys, "run", "--cycles", "150", "--mode", "als", "--engine", "als_batch"
    )
    assert "als_batch" in out
    assert "performance" in out


def test_scenarios_command_lists_catalog(capsys):
    out = run_cli(capsys, "scenarios")
    assert "Scenario catalog" in out
    for name in (
        "als_streaming",
        "sla_streaming",
        "mixed",
        "multi_master_contention",
        "dma_burst_storm",
        "interrupt_control",
        "sparse_telemetry",
        "rmw_fifo",
    ):
        assert name in out
    # at least 8 scenarios registered
    from repro.workloads import scenario_names

    assert len(scenario_names()) >= 8


def test_scenarios_command_tag_filter(capsys):
    out = run_cli(capsys, "scenarios", "--tag", "paper")
    assert "als_streaming" in out
    assert "dma_burst_storm" not in out


def test_scenarios_command_engine_column(capsys):
    out = run_cli(capsys, "scenarios", "--engine")
    assert "engines" in out
    assert "als_batch" in out
    assert "conventional_batch" in out
    # pseudo-engines that never touch the mechanism are excluded
    assert "analytical" not in out


def test_sweep_command_runs_grid(capsys):
    out = run_cli(
        capsys,
        "sweep",
        "--scenarios", "single_master",
        "--modes", "conservative", "als",
        "--cycles", "80",
    )
    assert "Sweep grid: 2 run(s)" in out
    assert "conservative" in out and "als" in out
    assert "digest" in out


def test_sweep_command_parallel_output_identical_to_serial(capsys):
    argv = [
        "sweep",
        "--scenarios", "single_master", "mixed",
        "--modes", "conservative", "als",
        "--cycles", "80",
    ]
    serial = run_cli(capsys, *argv, "--jobs", "1")
    parallel = run_cli(capsys, *argv, "--jobs", "2")
    assert serial == parallel


def test_sweep_command_writes_run_store(capsys, tmp_path):
    path = tmp_path / "runs.jsonl"
    code = main(
        [
            "sweep",
            "--scenarios", "single_master",
            "--modes", "als",
            "--cycles", "60",
            "--output", str(path),
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    # the status line goes to stderr; stdout stays a deterministic artefact
    assert f"wrote 1 record(s) to {path}" in captured.err
    assert "Sweep grid" in captured.out
    from repro.orchestration import RunStore

    assert len(RunStore(path)) == 1


def test_sweep_command_cache_warm_run_is_all_hits(capsys, tmp_path):
    argv = [
        "sweep",
        "--scenarios", "single_master",
        "--modes", "conservative", "als",
        "--cycles", "60",
        "--cache", str(tmp_path / "cache"),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr()
    assert "0 hit(s), 2 miss(es), 2 store(s)" in cold.err
    assert main(argv) == 0
    warm = capsys.readouterr()
    assert "2 hit(s), 0 miss(es), 0 store(s)" in warm.err
    assert cold.out == warm.out


def test_sweep_command_resume_completes_a_torn_store(capsys, tmp_path):
    full = tmp_path / "full.jsonl"
    partial = tmp_path / "partial.jsonl"
    argv = [
        "sweep",
        "--scenarios", "single_master", "mixed",
        "--modes", "conservative", "als",
        "--cycles", "60",
    ]
    assert main(argv + ["--output", str(full)]) == 0
    full_out = capsys.readouterr().out
    # interrupted mid-grid: two whole records, the third torn mid-line
    lines = full.read_text().splitlines()
    partial.write_text(lines[0] + "\n" + lines[1] + "\n" + lines[2][:50])
    assert main(argv + ["--output", str(partial), "--resume"]) == 0
    resumed = capsys.readouterr()
    assert "resume: 2 reusable, 2 to execute, 1 damaged line(s) dropped" in resumed.err
    assert resumed.out == full_out
    assert partial.read_bytes() == full.read_bytes()


def test_sweep_command_resume_requires_output(capsys):
    code = main(["sweep", "--scenarios", "single_master", "--resume"])
    captured = capsys.readouterr()
    assert code == 1
    assert "--resume requires --output" in captured.err


def test_report_command_quick_twice_is_cached_and_byte_identical(capsys, tmp_path):
    argv = [
        "report",
        "--quick",
        "--artifacts", "table2", "mechanism_single_master",
        "--cache", str(tmp_path / "cache"),
    ]
    assert main(argv + ["--out", str(tmp_path / "cold")]) == 0
    cold = capsys.readouterr()
    assert "cache hit(s)" in cold.err
    assert "0 executed" not in cold.err
    assert "table2" in cold.out and "mechanism_single_master" in cold.out
    assert main(argv + ["--out", str(tmp_path / "warm")]) == 0
    warm = capsys.readouterr()
    assert "0 executed" in warm.err
    assert cold.out == warm.out
    cold_files = sorted((tmp_path / "cold").iterdir())
    assert [p.name for p in cold_files] == sorted(
        ["MANIFEST.json", "table2.csv", "table2.json",
         "mechanism_single_master.csv", "mechanism_single_master.json"]
    )
    for path in cold_files:
        assert path.read_bytes() == (tmp_path / "warm" / path.name).read_bytes()


def test_report_command_unknown_artifact_exits_nonzero(capsys, tmp_path):
    code = main(
        ["report", "--quick", "--artifacts", "bogus", "--out", str(tmp_path / "a")]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "bogus" in captured.err


def test_run_command_analytical_engine(capsys):
    out = run_cli(capsys, "run", "--engine", "analytical", "--cycles", "100")
    assert "analytical" in out


def test_version_flag_reports_pyproject_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    from repro.version import package_version

    assert package_version() in out
    assert package_version() != "0+unknown"


def test_failing_subcommand_exits_nonzero(capsys):
    code = main(["sweep", "--scenarios", "single_master", "--engine", "bogus"])
    captured = capsys.readouterr()
    assert code == 1
    assert "error" in captured.err
    assert "bogus" in captured.err


def test_parser_rejects_unknown_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["not-a-command"])


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_command_with_faulty_scenario_reports_fault_counters(capsys):
    out = run_cli(capsys, "run", "--soc", "lossy_streaming", "--cycles", "120")
    assert "channel faults" in out
    assert "retx" in out


def test_run_command_loss_shortcut_on_ideal_scenario(capsys):
    out = run_cli(
        capsys, "run", "--soc", "mixed", "--cycles", "120", "--loss", "0.05"
    )
    assert "channel faults" in out


def test_run_command_faults_json_inline(capsys):
    out = run_cli(
        capsys, "run", "--soc", "mixed", "--cycles", "100",
        "--faults", '{"loss_rate": 0.02, "seed": 4}',
    )
    assert "channel faults" in out


def test_run_command_empty_faults_forces_ideal_channel(capsys):
    out = run_cli(
        capsys, "run", "--soc", "lossy_streaming", "--cycles", "100",
        "--faults", "{}",
    )
    assert "channel faults" not in out


def test_run_command_rejects_bad_faults_json(capsys):
    code = main(["run", "--soc", "mixed", "--faults", '{"loss_rtae": 0.1}'])
    captured = capsys.readouterr()
    assert code == 1
    assert "unknown channel-fault field" in captured.err


def test_sweep_command_faulty_tag_parallel_matches_serial(capsys):
    argv = [
        "sweep", "--tag", "faulty", "--modes", "als",
        "--cycles", "100", "--seed", "7",
    ]
    serial = run_cli(capsys, *argv, "--jobs", "1")
    parallel = run_cli(capsys, *argv, "--jobs", "2")
    assert serial == parallel
    assert "lossy_streaming" in serial


# ---------------------------------------------------------------------------
# Fleet sweeps and the worker subcommand.
# ---------------------------------------------------------------------------

def test_sweep_fleet_stdout_and_store_byte_identical_to_serial(capsys, tmp_path):
    argv = [
        "sweep",
        "--scenarios", "single_master", "mixed",
        "--modes", "conservative", "als",
        "--cycles", "60",
    ]
    serial_path = tmp_path / "serial.jsonl"
    assert main(argv + ["--jobs", "1", "--output", str(serial_path)]) == 0
    serial = capsys.readouterr()
    fleet_path = tmp_path / "fleet.jsonl"
    assert main(
        argv
        + [
            "--fleet", "1",
            "--cache", str(tmp_path / "cache"),
            "--fleet-poll", "0.02",
            "--output", str(fleet_path),
        ]
    ) == 0
    fleet = capsys.readouterr()
    # The deterministic artefact (stdout + store bytes) must not change; all
    # the fleet chatter (worker table, summary) belongs to stderr.
    assert fleet.out == serial.out
    assert fleet_path.read_bytes() == serial_path.read_bytes()
    assert "TOTAL" in fleet.err
    assert "reconciliation pass(es)" in fleet.err


def test_sweep_fleet_requires_cache(capsys):
    code = main(["sweep", "--scenarios", "single_master", "--fleet", "2"])
    captured = capsys.readouterr()
    assert code == 1
    assert "--fleet requires --cache" in captured.err


def test_sweep_fleet_rejects_resume_and_jobs(capsys, tmp_path):
    base = [
        "sweep", "--scenarios", "single_master",
        "--fleet", "1", "--cache", str(tmp_path / "cache"),
    ]
    code = main(base + ["--resume", "--output", str(tmp_path / "out.jsonl")])
    assert code == 1
    assert "drop --resume" in capsys.readouterr().err
    code = main(base + ["--jobs", "2"])
    assert code == 1
    assert "mutually exclusive" in capsys.readouterr().err


def test_worker_command_joins_a_published_sweep(capsys, tmp_path):
    from repro.orchestration import grid_requests, publish_grid

    cache = tmp_path / "cache"
    publish_grid(
        cache,
        grid_requests(
            scenarios=["single_master"], modes=["als"], cycles=60
        ),
    )
    out = run_cli(
        capsys, "worker", "--cache", str(cache), "--owner", "cli-probe",
        "--poll", "0.02",
    )
    assert "cli-probe" in out
    assert "executed" in out


def test_worker_command_without_manifest_exits_nonzero(capsys, tmp_path):
    code = main(["worker", "--cache", str(tmp_path / "nowhere")])
    captured = capsys.readouterr()
    assert code == 1
    assert "--fleet" in captured.err  # the hint names the publishing command


# ---------------------------------------------------------------------------
# Durable runs, supervision and the exit-code taxonomy.
# ---------------------------------------------------------------------------

def test_run_durable_checkpoint_output_identical_and_cleaned_up(capsys, tmp_path):
    plain = run_cli(capsys, "run", "--cycles", "150", "--mode", "als")
    durable = run_cli(
        capsys, "run", "--cycles", "150", "--mode", "als",
        "--checkpoint-every", "40", "--snapshot-dir", str(tmp_path / "snaps"),
    )
    assert durable == plain  # durability must not perturb the result
    assert list((tmp_path / "snaps").glob("*.snap")) == []  # consumed on success


def test_run_supervised_output_identical(capsys, tmp_path):
    plain = run_cli(capsys, "run", "--cycles", "120", "--mode", "conservative",
                    "--soc", "single_master")
    supervised = run_cli(
        capsys, "run", "--cycles", "120", "--mode", "conservative",
        "--soc", "single_master", "--deadline", "60",
        "--snapshot-dir", str(tmp_path / "snaps"),
    )
    assert supervised == plain


def test_run_deterministic_degradation_exits_13(capsys):
    code = main([
        "run", "--soc", "mixed", "--mode", "als", "--cycles", "300",
        "--faults", '{"loss_rate": 1.0, "max_attempts": 3}',
    ])
    captured = capsys.readouterr()
    assert code == 13
    assert "degraded" in captured.err


def test_run_supervised_degradation_prints_quarantine_table(capsys, tmp_path):
    code = main([
        "run", "--soc", "mixed", "--mode", "als", "--cycles", "300",
        "--faults", '{"loss_rate": 1.0, "max_attempts": 3}',
        "--deadline", "60", "--snapshot-dir", str(tmp_path / "snaps"),
    ])
    captured = capsys.readouterr()
    assert code == 13
    assert "quarantined" in captured.out or "quarantined" in captured.err
    assert "degraded" in captured.out


def test_sweep_supervised_chaos_kill_retried_to_identical_bytes(capsys, tmp_path):
    argv = [
        "sweep", "--scenarios", "single_master", "als_streaming",
        "--modes", "conservative", "--cycles", "150",
    ]
    assert main(argv + ["--output", str(tmp_path / "plain.jsonl")]) == 0
    plain = capsys.readouterr()
    report = tmp_path / "quarantine.json"
    code = main(argv + [
        "--output", str(tmp_path / "chaos.jsonl"),
        "--snapshot-dir", str(tmp_path / "snaps"),
        "--checkpoint-every", "30", "--deadline", "60",
        "--chaos-seed", "11", "--chaos-kill", "0.45",
        "--quarantine-report", str(report),
    ])
    chaos = capsys.readouterr()
    assert code == 0  # every sabotaged point was retried to success
    assert chaos.out == plain.out
    assert (tmp_path / "chaos.jsonl").read_bytes() == (
        tmp_path / "plain.jsonl"
    ).read_bytes()
    assert not (tmp_path / "chaos.jsonl.failures").exists()
    import json as _json

    payload = _json.loads(report.read_text())
    assert payload == {"total": 0, "by_kind": {}, "failures": []}


def test_sweep_poison_exits_12_with_sidecar_and_report(capsys, tmp_path):
    report = tmp_path / "quarantine.json"
    code = main([
        "sweep", "--scenarios", "single_master", "als_streaming",
        "--modes", "conservative", "--cycles", "150",
        "--output", str(tmp_path / "runs.jsonl"),
        "--snapshot-dir", str(tmp_path / "snaps"),
        "--deadline", "60", "--max-retries", "1",
        "--chaos-seed", "11", "--chaos-kill", "0.45", "--chaos-every-attempt",
        "--quarantine-report", str(report),
    ])
    captured = capsys.readouterr()
    assert code == 12  # poison: retries exhausted
    assert "Quarantine" in captured.err
    import json as _json

    payload = _json.loads(report.read_text())
    assert payload["by_kind"] == {"poison": payload["total"]}
    assert payload["total"] >= 1
    sidecar = tmp_path / "runs.jsonl.failures"
    assert sidecar.exists()
    assert len(sidecar.read_text().splitlines()) == payload["total"]
    # The store holds only healthy records -- failures never leak into it.
    store_lines = (tmp_path / "runs.jsonl").read_text().splitlines()
    assert len(store_lines) == 2 - payload["total"]


def test_sweep_timeout_exits_10(capsys, tmp_path):
    code = main([
        "sweep", "--scenarios", "single_master", "--modes", "conservative",
        "--cycles", "150", "--deadline", "1.0", "--max-retries", "0",
        "--chaos-seed", "0", "--chaos-kill", "0.0",
        "--chaos-hang", "1.0", "--chaos-hang-seconds", "30",
        "--chaos-every-attempt",
        "--snapshot-dir", str(tmp_path / "snaps"),
    ])
    captured = capsys.readouterr()
    assert code == 10
    assert "timeout" in captured.err


def test_sweep_resume_rejects_supervision(capsys, tmp_path):
    code = main([
        "sweep", "--scenarios", "single_master", "--cycles", "60",
        "--resume", "--output", str(tmp_path / "runs.jsonl"),
        "--deadline", "5",
    ])
    assert code == 1
    assert "--resume cannot combine" in capsys.readouterr().err


def test_sweep_fleet_rejects_deadline(capsys, tmp_path):
    code = main([
        "sweep", "--scenarios", "single_master", "--cycles", "60",
        "--fleet", "1", "--cache", str(tmp_path / "cache"), "--deadline", "5",
    ])
    assert code == 1
    assert "--fleet-ttl" in capsys.readouterr().err


def test_worker_parser_accepts_durability_flags():
    args = build_parser().parse_args([
        "worker", "--cache", "somewhere", "--drain-on-signal",
        "--checkpoint-every", "500", "--max-retries", "3",
    ])
    assert args.drain_on_signal is True
    assert args.checkpoint_every == 500
    assert args.max_retries == 3
    defaults = build_parser().parse_args(["worker", "--cache", "somewhere"])
    assert defaults.drain_on_signal is False
    assert defaults.max_retries is None
