"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


def test_table2_command_prints_paper_comparison(capsys):
    out = run_cli(capsys, "table2")
    assert "Table 2" in out
    assert "1.000" in out and "0.100" in out
    assert "ratio (paper)" in out


def test_figure4_command_prints_chart_with_legend(capsys):
    out = run_cli(capsys, "figure4")
    assert "Figure 4" in out
    assert "LOBdepth=64" in out and "LOBdepth=8" in out
    assert "conventional" in out


def test_sla_command(capsys):
    out = run_cli(capsys, "sla")
    assert "SLA" in out
    assert "break-even" in out


def test_conventional_command(capsys):
    out = run_cli(capsys, "conventional")
    assert "38.8k" in out or "38.9k" in out
    assert "28.8k" in out


def test_mechanism_command_small_sweep(capsys):
    out = run_cli(
        capsys, "mechanism", "--cycles", "120", "--accuracies", "1.0", "0.8"
    )
    assert "Mechanism-level" in out
    assert "conventional" in out
    assert "p=1" in out and "p=0.8" in out


def test_run_command_reports_breakdown(capsys):
    out = run_cli(capsys, "run", "--cycles", "150", "--mode", "als")
    assert "performance" in out
    assert "monitors clean" in out
    assert "True" in out


def test_run_command_conservative_mode(capsys):
    out = run_cli(capsys, "run", "--cycles", "100", "--mode", "conservative")
    assert "conservative" in out


def test_parser_rejects_unknown_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["not-a-command"])


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
