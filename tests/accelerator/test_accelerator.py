"""Unit tests for the emulated accelerator substrate."""

from __future__ import annotations

import pytest

from repro.accelerator import (
    AcceleratorError,
    AcceleratorSpec,
    EmulatedAccelerator,
    RtlBlockRegistry,
    estimate_gates,
    estimate_registers,
)
from repro.ahb.master import TrafficMaster
from repro.ahb.slave import FifoPeripheralSlave, MemorySlave
from repro.sim.component import AbstractionLevel
from repro.workloads import als_streaming_soc


def test_gate_and_register_estimates_scale_with_component_size():
    small_mem = MemorySlave("s", 0, 0x0, 0x100)
    big_mem = MemorySlave("b", 1, 0x0, 0x1000)
    assert estimate_gates(big_mem) > estimate_gates(small_mem)
    assert estimate_registers(big_mem) > estimate_registers(small_mem)
    fifo = FifoPeripheralSlave("f", 2, depth=16)
    assert estimate_gates(fifo) > 0
    master = TrafficMaster("m", 0, level=AbstractionLevel.RTL)
    assert estimate_gates(master) > 0
    assert estimate_registers(master) > 0


def test_registry_registers_only_rtl_components():
    registry = RtlBlockRegistry()
    rtl = MemorySlave("rtl_mem", 0, 0x0, 0x100, level=AbstractionLevel.RTL)
    tl = MemorySlave("tl_mem", 1, 0x0, 0x100, level=AbstractionLevel.TL)
    registry.register_all([rtl, tl])
    assert registry.by_name("rtl_mem") is not None
    assert registry.by_name("tl_mem") is None


def test_registry_totals_and_utilisation():
    registry = RtlBlockRegistry()
    registry.register(MemorySlave("m", 0, 0x0, 0x400, level=AbstractionLevel.RTL))
    registry.register(TrafficMaster("t", 0, level=AbstractionLevel.RTL))
    assert registry.total_gates > 0
    assert registry.total_registers > 0
    assert 0 < registry.utilisation(registry.total_gates * 2) < 1
    registry.tick_all(10)
    assert all(block.cycles_emulated == 10 for block in registry.blocks)
    payload = registry.as_dict()
    assert set(payload) == {"m", "t"}


def test_accelerator_maps_accelerator_domain_half_bus():
    spec = als_streaming_soc(n_bursts=2)
    _, acc_hbm, _ = spec.build_split()
    accelerator = EmulatedAccelerator().map_design(acc_hbm)
    report = accelerator.capacity_report()
    assert report["used_gates"] > 0
    assert 0 < report["utilisation"] < 1
    assert report["rollback_registers"] > 0
    assert report["cycles_per_second"] == 10_000_000.0
    assert len(report["blocks"]) >= 3  # three RTL masters


def test_accelerator_rejects_simulator_domain_half_bus():
    spec = als_streaming_soc(n_bursts=2)
    sim_hbm, _, _ = spec.build_split()
    with pytest.raises(AcceleratorError):
        EmulatedAccelerator().map_design(sim_hbm)


def test_accelerator_rejects_simulator_kind_domain_via_topology():
    from repro.ahb.half_bus import HalfBusModel
    from repro.core.topology import DomainKind, DomainSpec, Topology
    from repro.sim.component import Domain

    topology = Topology(
        domains=(
            DomainSpec(Domain("host"), DomainKind.SIMULATOR),
            DomainSpec(Domain("acc0"), DomainKind.ACCELERATOR),
        )
    )
    host_hbm = HalfBusModel("host_hbm", Domain("host"))
    with pytest.raises(AcceleratorError, match="kind"):
        EmulatedAccelerator().map_design(host_hbm, topology=topology)


def test_accelerator_pins_to_one_farm_domain():
    from repro.ahb.half_bus import HalfBusModel
    from repro.sim.component import Domain

    acc1_hbm = HalfBusModel("acc1_hbm", Domain("acc1"))
    with pytest.raises(AcceleratorError, match="emulates domain"):
        EmulatedAccelerator().map_design(acc1_hbm, domain=Domain("acc0"))


def test_capacity_overflow_is_detected():
    spec = als_streaming_soc(n_bursts=2)
    _, acc_hbm, _ = spec.build_split()
    tiny = EmulatedAccelerator(spec=AcceleratorSpec(capacity_gates=10))
    with pytest.raises(AcceleratorError):
        tiny.map_design(acc_hbm)


def test_spec_speed_helper():
    spec = AcceleratorSpec(cycles_per_second=5_000_000.0)
    assert spec.speed.cycles_per_second == 5_000_000.0
