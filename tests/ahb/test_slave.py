"""Unit tests for bus slaves."""

from __future__ import annotations

import pytest

from repro.ahb.slave import DefaultSlave, FifoPeripheralSlave, MemorySlave
from repro.ahb.signals import AddressPhase, AhbError, HResp, HTrans


def write_phase(addr, master_id=0):
    return AddressPhase(master_id=master_id, haddr=addr, htrans=HTrans.NONSEQ, hwrite=True)


def read_phase(addr, master_id=0):
    return AddressPhase(master_id=master_id, haddr=addr, htrans=HTrans.NONSEQ, hwrite=False)


class TestMemorySlave:
    def test_write_then_read_round_trips(self):
        memory = MemorySlave("mem", 0, base_address=0x1000, size_bytes=0x100)
        result = memory.data_phase(0, write_phase(0x1010), hwdata=0xDEADBEEF, first_cycle=True)
        assert result.hready and result.hresp is HResp.OKAY
        readback = memory.data_phase(1, read_phase(0x1010), hwdata=None, first_cycle=True)
        assert readback.hrdata == 0xDEADBEEF

    def test_direct_access_helpers(self):
        memory = MemorySlave("mem", 0, base_address=0x0, size_bytes=0x40)
        memory.load(0x10, [1, 2, 3])
        assert memory.read_word(0x14) == 2
        memory.write_word(0x14, 99)
        assert memory.read_word(0x14) == 99

    def test_values_are_truncated_to_32_bits(self):
        memory = MemorySlave("mem", 0, base_address=0x0, size_bytes=0x10)
        memory.write_word(0x0, 0x1_2345_6789)
        assert memory.read_word(0x0) == 0x2345_6789

    def test_out_of_range_access_rejected(self):
        memory = MemorySlave("mem", 0, base_address=0x1000, size_bytes=0x100)
        with pytest.raises(AhbError):
            memory.read_word(0x0FFF)
        with pytest.raises(AhbError):
            memory.write_word(0x1100, 1)

    def test_bad_size_rejected(self):
        with pytest.raises(AhbError):
            MemorySlave("mem", 0, base_address=0, size_bytes=6)

    def test_wait_states_delay_completion(self):
        memory = MemorySlave("mem", 0, 0x0, 0x100, read_wait_states=2)
        memory.write_word(0x20, 7)
        first = memory.data_phase(0, read_phase(0x20), None, first_cycle=True)
        second = memory.data_phase(1, read_phase(0x20), None, first_cycle=False)
        third = memory.data_phase(2, read_phase(0x20), None, first_cycle=False)
        assert not first.hready and not second.hready
        assert third.hready and third.hrdata == 7
        assert memory.stats.wait_states == 2

    def test_write_without_data_raises(self):
        memory = MemorySlave("mem", 0, 0x0, 0x100)
        with pytest.raises(AhbError):
            memory.data_phase(0, write_phase(0x0), hwdata=None, first_cycle=True)

    def test_snapshot_restore_round_trips_contents(self):
        memory = MemorySlave("mem", 0, 0x0, 0x100)
        memory.write_word(0x0, 11)
        state = memory.snapshot_state()
        memory.write_word(0x0, 22)
        memory.write_word(0x4, 33)
        memory.restore_state(state)
        assert memory.read_word(0x0) == 11
        assert memory.read_word(0x4) == 0

    def test_rollback_variable_count_scales_with_size(self):
        small = MemorySlave("s", 0, 0x0, 0x40)
        large = MemorySlave("l", 1, 0x0, 0x400)
        assert large.rollback_variable_count() > small.rollback_variable_count()

    def test_reset_clears_contents(self):
        memory = MemorySlave("mem", 0, 0x0, 0x40)
        memory.write_word(0x0, 5)
        memory.reset()
        assert memory.read_word(0x0) == 0


class TestFifoPeripheralSlave:
    def test_read_from_empty_fifo_waits_until_produced(self):
        fifo = FifoPeripheralSlave("fifo", 0, depth=4, produce_period=2, initial_fill=0)
        first = fifo.data_phase(0, read_phase(0x0), None, first_cycle=True)
        assert not first.hready
        # two producer ticks add one element
        fifo.evaluate(1)
        fifo.evaluate(2)
        second = fifo.data_phase(2, read_phase(0x0), None, first_cycle=False)
        assert second.hready

    def test_reads_return_incrementing_stream(self):
        fifo = FifoPeripheralSlave("fifo", 0, depth=8, initial_fill=8)
        values = [
            fifo.data_phase(i, read_phase(0x0), None, first_cycle=True).hrdata for i in range(3)
        ]
        assert values == [0, 1, 2]

    def test_write_to_full_fifo_waits(self):
        fifo = FifoPeripheralSlave("fifo", 0, depth=2, produce_period=1000, initial_fill=2)
        result = fifo.data_phase(0, write_phase(0x0), hwdata=1, first_cycle=True)
        assert not result.hready
        assert fifo.stats.wait_states == 1

    def test_snapshot_restore_round_trip(self):
        fifo = FifoPeripheralSlave("fifo", 0, depth=4, initial_fill=4)
        fifo.data_phase(0, read_phase(0x0), None, first_cycle=True)
        state = fifo.snapshot_state()
        fifo.data_phase(1, read_phase(0x0), None, first_cycle=True)
        fifo.restore_state(state)
        result = fifo.data_phase(2, read_phase(0x0), None, first_cycle=True)
        assert result.hrdata == 1  # the second element again

    def test_bad_depth_rejected(self):
        with pytest.raises(AhbError):
            FifoPeripheralSlave("fifo", 0, depth=0)


class TestDefaultSlave:
    def test_two_cycle_error_response(self):
        slave = DefaultSlave()
        first = slave.data_phase(0, read_phase(0x0), None, first_cycle=True)
        second = slave.data_phase(1, read_phase(0x0), None, first_cycle=False)
        assert (first.hready, first.hresp) == (False, HResp.ERROR)
        assert (second.hready, second.hresp) == (True, HResp.ERROR)
        assert slave.stats.errors == 1

    def test_new_beat_restarts_error_sequence(self):
        slave = DefaultSlave()
        slave.data_phase(0, read_phase(0x0), None, first_cycle=True)
        slave.data_phase(1, read_phase(0x0), None, first_cycle=False)
        again = slave.data_phase(2, read_phase(0x4), None, first_cycle=True)
        assert not again.hready

    def test_snapshot_restore(self):
        slave = DefaultSlave()
        slave.data_phase(0, read_phase(0x0), None, first_cycle=True)
        state = slave.snapshot_state()
        slave.data_phase(1, read_phase(0x0), None, first_cycle=False)
        slave.restore_state(state)
        # restored mid-error-sequence: next call completes the response
        result = slave.data_phase(2, read_phase(0x0), None, first_cycle=False)
        assert result.hready and result.hresp is HResp.ERROR
