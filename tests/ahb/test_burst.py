"""Unit tests for burst address sequencing."""

from __future__ import annotations

import pytest

from repro.ahb.burst import (
    BurstTracker,
    beat_count,
    burst_addresses,
    next_beat_address,
    wrap_boundary,
)
from repro.ahb.signals import AhbError, HBurst, HSize


def test_beat_count_fixed_and_incr():
    assert beat_count(HBurst.SINGLE) == 1
    assert beat_count(HBurst.INCR8) == 8
    assert beat_count(HBurst.INCR, requested_beats=5) == 5
    with pytest.raises(AhbError):
        beat_count(HBurst.INCR)


def test_incrementing_burst_addresses():
    assert burst_addresses(0x100, HBurst.INCR4, HSize.WORD) == [0x100, 0x104, 0x108, 0x10C]
    assert burst_addresses(0x20, HBurst.INCR, HSize.WORD, beats=3) == [0x20, 0x24, 0x28]


def test_wrapping_burst_addresses_wrap_at_boundary():
    # WRAP4 of words starting at 0x38: window is [0x30, 0x40)
    assert burst_addresses(0x38, HBurst.WRAP4, HSize.WORD) == [0x38, 0x3C, 0x30, 0x34]
    # WRAP8 of words starting at 0x10 (already aligned): no wrap occurs
    assert burst_addresses(0x0, HBurst.WRAP8, HSize.WORD) == [
        0x0, 0x4, 0x8, 0xC, 0x10, 0x14, 0x18, 0x1C,
    ]


def test_wrap_boundary_window():
    low, high = wrap_boundary(0x58, HBurst.WRAP4, HSize.WORD)
    assert (low, high) == (0x50, 0x60)
    with pytest.raises(AhbError):
        wrap_boundary(0x58, HBurst.INCR4, HSize.WORD)


def test_next_beat_address_matches_sequence():
    addresses = burst_addresses(0x78, HBurst.WRAP8, HSize.WORD)
    for current, following in zip(addresses, addresses[1:]):
        assert next_beat_address(current, HBurst.WRAP8, HSize.WORD, 0x78) == following


def test_unaligned_start_rejected():
    with pytest.raises(AhbError):
        burst_addresses(0x102, HBurst.INCR4, HSize.WORD)


def test_halfword_bursts_step_by_two():
    assert burst_addresses(0x100, HBurst.INCR4, HSize.HALFWORD) == [0x100, 0x102, 0x104, 0x106]


def test_tracker_walks_through_all_beats():
    tracker = BurstTracker.from_first_beat(0x200, HBurst.INCR4, HSize.WORD)
    seen = []
    while not tracker.complete:
        assert tracker.remaining_beats == 4 - len(seen)
        seen.append(tracker.accept_beat())
    assert seen == [0x200, 0x204, 0x208, 0x20C]
    assert tracker.complete
    with pytest.raises(AhbError):
        _ = tracker.current_address


def test_tracker_first_beat_flag():
    tracker = BurstTracker.from_first_beat(0x0, HBurst.INCR4, HSize.WORD)
    assert tracker.is_first_beat
    tracker.accept_beat()
    assert not tracker.is_first_beat


def test_tracker_remaining_addresses():
    tracker = BurstTracker.from_first_beat(0x100, HBurst.INCR8, HSize.WORD)
    tracker.accept_beat()
    tracker.accept_beat()
    assert tracker.remaining_addresses() == [0x108, 0x10C, 0x110, 0x114, 0x118, 0x11C]


def test_tracker_snapshot_round_trip():
    tracker = BurstTracker.from_first_beat(0x40, HBurst.WRAP4, HSize.WORD)
    tracker.accept_beat()
    clone = BurstTracker.from_snapshot(tracker.snapshot())
    assert clone.current_address == tracker.current_address
    assert clone.remaining_beats == tracker.remaining_beats
    assert clone.hburst is HBurst.WRAP4
