"""Unit tests for AHB signal definitions and the MSABS classification."""

from __future__ import annotations

import pytest

from repro.ahb.signals import (
    AddressPhase,
    AhbError,
    DataPhaseResult,
    HBurst,
    HResp,
    HSize,
    HTrans,
    MSABS_CLASSIFICATION,
    SignalClass,
    is_predictable,
)


def test_htrans_active_classification():
    assert HTrans.NONSEQ.is_active
    assert HTrans.SEQ.is_active
    assert not HTrans.IDLE.is_active
    assert not HTrans.BUSY.is_active


def test_hburst_beat_counts():
    assert HBurst.SINGLE.beats == 1
    assert HBurst.INCR4.beats == 4
    assert HBurst.WRAP8.beats == 8
    assert HBurst.INCR16.beats == 16
    assert HBurst.INCR.beats is None


def test_hburst_wrapping_flag():
    assert HBurst.WRAP4.is_wrapping
    assert HBurst.WRAP16.is_wrapping
    assert not HBurst.INCR8.is_wrapping
    assert not HBurst.SINGLE.is_wrapping


def test_hsize_byte_widths():
    assert HSize.BYTE.bytes == 1
    assert HSize.HALFWORD.bytes == 2
    assert HSize.WORD.bytes == 4
    assert HSize.DOUBLEWORD.bytes == 8


def test_address_phase_requires_alignment():
    AddressPhase(master_id=0, haddr=0x104, htrans=HTrans.NONSEQ)  # aligned: fine
    with pytest.raises(AhbError):
        AddressPhase(master_id=0, haddr=0x102, htrans=HTrans.NONSEQ, hsize=HSize.WORD)
    # halfword alignment is less strict
    AddressPhase(master_id=0, haddr=0x102, htrans=HTrans.NONSEQ, hsize=HSize.HALFWORD)


def test_address_phase_rejects_negative_address():
    with pytest.raises(AhbError):
        AddressPhase(master_id=0, haddr=-4)


def test_address_phase_idle_helpers():
    phase = AddressPhase(master_id=3, haddr=0x200, htrans=HTrans.NONSEQ, hwrite=True)
    idle = phase.idle()
    assert idle.htrans is HTrans.IDLE
    assert idle.haddr == phase.haddr
    assert not idle.is_active
    parked = AddressPhase.idle_phase(5)
    assert parked.master_id == 5
    assert not parked.is_active


def test_data_phase_result_constructors():
    okay = DataPhaseResult.okay(hrdata=0xABCD)
    assert okay.hready and okay.hresp is HResp.OKAY and okay.hrdata == 0xABCD
    wait = DataPhaseResult.wait()
    assert not wait.hready and wait.hresp is HResp.OKAY
    err1 = DataPhaseResult.error_first_cycle()
    err2 = DataPhaseResult.error_second_cycle()
    assert not err1.hready and err1.hresp is HResp.ERROR
    assert err2.hready and err2.hresp is HResp.ERROR


def test_msabs_classification_matches_paper_figure1():
    # address / control / responses / arbitration result: predictable
    for name in ("haddr", "htrans", "hwrite", "hsize", "hburst", "hprot",
                 "hready", "hresp", "hsplit", "arbitration_result", "interrupt"):
        assert MSABS_CLASSIFICATION[name] is SignalClass.PREDICTABLE, name
    # data signals and individual bus requests: non-predictable
    for name in ("hwdata", "hrdata", "hbusreq"):
        assert MSABS_CLASSIFICATION[name] is SignalClass.NON_PREDICTABLE, name


def test_is_predictable_helper_and_unknown_signal():
    assert is_predictable("haddr")
    assert not is_predictable("hrdata")
    with pytest.raises(AhbError):
        is_predictable("not_a_signal")
