"""Unit tests for the AHB protocol monitor."""

from __future__ import annotations

from repro.ahb.monitor import AhbProtocolMonitor
from repro.ahb.signals import (
    AddressPhase,
    BusCycleRecord,
    DataPhaseResult,
    HBurst,
    HResp,
    HTrans,
)


def record(
    cycle,
    granted=0,
    addr_phase=None,
    data_phase=None,
    hwdata=None,
    hready=True,
    hresp=HResp.OKAY,
):
    return BusCycleRecord(
        cycle=cycle,
        granted_master=granted,
        address_phase=addr_phase,
        data_phase=data_phase,
        hwdata=hwdata,
        response=DataPhaseResult(hready=hready, hresp=hresp),
        requests={},
    )


def phase(master=0, addr=0x0, trans=HTrans.NONSEQ, write=False, burst=HBurst.INCR4):
    return AddressPhase(master_id=master, haddr=addr, htrans=trans, hwrite=write, hburst=burst)


def test_clean_burst_produces_no_violations():
    monitor = AhbProtocolMonitor()
    monitor.check(record(0, addr_phase=phase(addr=0x0, trans=HTrans.NONSEQ)))
    monitor.check(record(1, addr_phase=phase(addr=0x4, trans=HTrans.SEQ)))
    monitor.check(record(2, addr_phase=phase(addr=0x8, trans=HTrans.SEQ)))
    monitor.check(record(3, addr_phase=phase(addr=0xC, trans=HTrans.SEQ)))
    assert monitor.ok


def test_active_transfer_by_non_granted_master_is_flagged():
    monitor = AhbProtocolMonitor()
    monitor.check(record(0, granted=1, addr_phase=phase(master=0)))
    assert not monitor.ok
    assert monitor.violations[0].rule == "GRANT"


def test_seq_with_wrong_address_is_flagged():
    monitor = AhbProtocolMonitor()
    monitor.check(record(0, addr_phase=phase(addr=0x0, trans=HTrans.NONSEQ)))
    monitor.check(record(1, addr_phase=phase(addr=0x10, trans=HTrans.SEQ)))
    assert any(v.rule == "BURST" for v in monitor.violations)


def test_seq_without_nonseq_is_flagged():
    monitor = AhbProtocolMonitor()
    monitor.check(record(0, addr_phase=phase(addr=0x4, trans=HTrans.SEQ)))
    assert any(v.rule == "BURST" for v in monitor.violations)


def test_seq_by_different_master_is_flagged():
    monitor = AhbProtocolMonitor()
    monitor.check(record(0, granted=0, addr_phase=phase(master=0, addr=0x0, trans=HTrans.NONSEQ)))
    monitor.check(record(1, granted=1, addr_phase=phase(master=1, addr=0x4, trans=HTrans.SEQ)))
    assert any(v.rule == "BURST" for v in monitor.violations)


def test_control_change_mid_burst_is_flagged():
    monitor = AhbProtocolMonitor()
    monitor.check(record(0, addr_phase=phase(addr=0x0, trans=HTrans.NONSEQ, write=False)))
    monitor.check(record(1, addr_phase=phase(addr=0x4, trans=HTrans.SEQ, write=True)))
    assert any(v.rule == "BURST" for v in monitor.violations)


def test_address_change_during_wait_state_is_flagged():
    monitor = AhbProtocolMonitor()
    data = phase(addr=0x100, trans=HTrans.NONSEQ)
    monitor.check(record(0, addr_phase=phase(addr=0x20), data_phase=data, hready=False))
    monitor.check(record(1, addr_phase=phase(addr=0x40), data_phase=data, hready=True))
    assert any(v.rule == "STABLE" for v in monitor.violations)


def test_address_held_during_wait_state_is_clean():
    monitor = AhbProtocolMonitor()
    data = phase(addr=0x100, trans=HTrans.NONSEQ)
    held = phase(addr=0x20)
    monitor.check(record(0, addr_phase=held, data_phase=data, hready=False))
    monitor.check(record(1, addr_phase=held, data_phase=data, hready=True))
    assert monitor.ok


def test_error_response_with_wait_outside_data_phase_is_flagged():
    monitor = AhbProtocolMonitor()
    monitor.check(record(0, hready=False, hresp=HResp.ERROR, data_phase=None))
    assert any(v.rule == "RESP" for v in monitor.violations)


def test_two_cycle_error_inside_data_phase_is_clean():
    monitor = AhbProtocolMonitor()
    data = phase(addr=0x100, trans=HTrans.NONSEQ)
    monitor.check(record(0, data_phase=data, hready=False, hresp=HResp.ERROR))
    monitor.check(record(1, data_phase=data, hready=True, hresp=HResp.ERROR))
    assert monitor.ok


def test_reset_clears_violations_and_history():
    monitor = AhbProtocolMonitor()
    monitor.check(record(0, granted=1, addr_phase=phase(master=0)))
    assert not monitor.ok
    monitor.reset()
    assert monitor.ok
    assert monitor.violations == []


def test_violation_string_rendering():
    monitor = AhbProtocolMonitor()
    monitor.check(record(7, granted=1, addr_phase=phase(master=0)))
    text = str(monitor.violations[0])
    assert "cycle 7" in text and "GRANT" in text
