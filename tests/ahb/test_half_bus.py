"""Unit tests for the half bus models and the boundary-value plumbing.

These tests drive two :class:`HalfBusModel` instances directly (without the
co-emulation engines) by exchanging their boundary contributions every cycle,
i.e. a hand-rolled conservative synchronisation.  This isolates the split-bus
logic from the channel wrappers.
"""

from __future__ import annotations

import pytest

from repro.ahb.half_bus import BoundaryDrive, HalfBusModel
from repro.ahb.master import TrafficMaster
from repro.ahb.signals import AhbError, DataPhaseResult, HBurst
from repro.ahb.slave import MemorySlave
from repro.ahb.transaction import BusTransaction
from repro.sim.component import Domain


def build_split_pair(acc_master_txns, sim_slave_base=0x1000, sim_slave_size=0x1000):
    """One RTL master in the accelerator, one memory in the simulator."""
    sim_hbm = HalfBusModel("hbms", Domain.SIMULATOR)
    acc_hbm = HalfBusModel("hbma", Domain.ACCELERATOR)
    master = TrafficMaster("m0", 0, acc_master_txns)
    acc_hbm.add_local_master(master)
    sim_hbm.add_remote_master(0)
    memory = MemorySlave("mem", 0, sim_slave_base, sim_slave_size)
    sim_hbm.add_local_slave(memory, sim_slave_base, sim_slave_size)
    acc_hbm.add_remote_slave(0, sim_slave_base, sim_slave_size, name="mem")
    sim_hbm.finalize()
    acc_hbm.finalize()
    return sim_hbm, acc_hbm, master, memory


def lockstep_cycle(sim_hbm, acc_hbm, cycle):
    """Run one conservatively synchronised cycle across both halves."""
    acc_drive = acc_hbm.drive_phase(cycle)
    sim_drive = sim_hbm.drive_phase(cycle)
    merged_sim = sim_hbm.merge_drive(sim_drive, acc_drive)
    merged_acc = acc_hbm.merge_drive(acc_drive, sim_drive)
    sim_response = sim_hbm.response_phase(cycle, merged_sim).response
    acc_response = acc_hbm.response_phase(cycle, merged_acc).response
    response = sim_response or acc_response or DataPhaseResult.okay()
    sim_hbm.commit_phase(cycle, merged_sim, response)
    acc_hbm.commit_phase(cycle, merged_acc, response)
    return response


def run_lockstep(sim_hbm, acc_hbm, cycles):
    for cycle in range(cycles):
        lockstep_cycle(sim_hbm, acc_hbm, cycle)


class TestConstruction:
    def test_duplicate_master_ids_rejected_across_local_and_remote(self):
        hbm = HalfBusModel("h", Domain.SIMULATOR)
        hbm.add_local_master(TrafficMaster("m", 0))
        with pytest.raises(AhbError):
            hbm.add_remote_master(0)
        with pytest.raises(AhbError):
            hbm.add_local_master(TrafficMaster("m2", 0))

    def test_duplicate_slave_ids_rejected(self):
        hbm = HalfBusModel("h", Domain.SIMULATOR)
        hbm.add_local_slave(MemorySlave("a", 0, 0x0, 0x100), 0x0, 0x100)
        with pytest.raises(AhbError):
            hbm.add_remote_slave(0, 0x1000, 0x100)

    def test_finalize_requires_at_least_one_master(self):
        hbm = HalfBusModel("h", Domain.SIMULATOR)
        with pytest.raises(AhbError):
            hbm.finalize()

    def test_both_halves_share_the_same_memory_map_view(self):
        sim_hbm, acc_hbm, _, _ = build_split_pair(
            [BusTransaction(0, 0x1000, True, HBurst.SINGLE, data=[1])]
        )
        assert sim_hbm.decoder.select(0x1004) == acc_hbm.decoder.select(0x1004) == 0


class TestNeededFields:
    def test_simulator_needs_remote_address_when_remote_master_granted(self):
        sim_hbm, acc_hbm, _, _ = build_split_pair(
            [BusTransaction(0, 0x1000, True, HBurst.INCR4, data=[1, 2, 3, 4])]
        )
        needed = sim_hbm.needed_fields()
        assert needed.needs_remote_requests
        assert needed.needs_remote_address_phase  # granted master 0 is remote to sim
        assert not needed.needs_remote_response

    def test_accelerator_needs_remote_response_once_data_phase_targets_sim_slave(self):
        sim_hbm, acc_hbm, master, _ = build_split_pair(
            [BusTransaction(0, 0x1000, True, HBurst.INCR4, data=[1, 2, 3, 4])]
        )
        run_lockstep(sim_hbm, acc_hbm, 2)  # first beat enters its data phase
        needed = acc_hbm.needed_fields()
        assert needed.needs_remote_response
        assert not needed.response_is_read
        assert not needed.needs_anything_non_predictable

    def test_read_from_remote_slave_is_non_predictable(self):
        sim_hbm, acc_hbm, _, memory = build_split_pair(
            [BusTransaction(0, 0x1000, False, HBurst.INCR4)]
        )
        run_lockstep(sim_hbm, acc_hbm, 2)
        needed = acc_hbm.needed_fields()
        assert needed.needs_remote_response
        assert needed.response_is_read
        assert needed.needs_anything_non_predictable

    def test_remote_write_data_is_non_predictable_for_slave_side(self):
        # Master in the simulator writes to an accelerator memory: the
        # accelerator needs the remote HWDATA, which is non-predictable.
        sim_hbm = HalfBusModel("hbms", Domain.SIMULATOR)
        acc_hbm = HalfBusModel("hbma", Domain.ACCELERATOR)
        master = TrafficMaster("m0", 0, [BusTransaction(0, 0x0, True, HBurst.INCR4, data=[1, 2, 3, 4])])
        sim_hbm.add_local_master(master)
        acc_hbm.add_remote_master(0)
        memory = MemorySlave("mem", 0, 0x0, 0x1000)
        acc_hbm.add_local_slave(memory, 0x0, 0x1000)
        sim_hbm.add_remote_slave(0, 0x0, 0x1000)
        sim_hbm.finalize()
        acc_hbm.finalize()
        run_lockstep(sim_hbm, acc_hbm, 2)
        needed = acc_hbm.needed_fields()
        assert needed.needs_remote_hwdata
        assert needed.needs_anything_non_predictable


class TestLockstepExecution:
    def test_write_burst_lands_in_remote_memory(self):
        sim_hbm, acc_hbm, master, memory = build_split_pair(
            [BusTransaction(0, 0x1000, True, HBurst.INCR4, data=[10, 20, 30, 40])]
        )
        run_lockstep(sim_hbm, acc_hbm, 20)
        assert master.done
        assert [memory.read_word(0x1000 + 4 * i) for i in range(4)] == [10, 20, 30, 40]

    def test_both_halves_record_the_same_beat_stream(self):
        sim_hbm, acc_hbm, _, _ = build_split_pair(
            [
                BusTransaction(0, 0x1000, True, HBurst.INCR4, data=[1, 2, 3, 4]),
                BusTransaction(0, 0x1000, False, HBurst.INCR4),
            ]
        )
        run_lockstep(sim_hbm, acc_hbm, 30)
        assert sim_hbm.recorder.beat_keys() == acc_hbm.recorder.beat_keys()
        assert len(sim_hbm.recorder.beat_keys()) == 8

    def test_registered_state_stays_in_sync(self):
        sim_hbm, acc_hbm, _, _ = build_split_pair(
            [BusTransaction(0, 0x1000, True, HBurst.INCR8, data=list(range(8)))]
        )
        for cycle in range(15):
            lockstep_cycle(sim_hbm, acc_hbm, cycle)
            assert sim_hbm.core.granted_master == acc_hbm.core.granted_master
            sim_phase = sim_hbm.core.data_phase
            acc_phase = acc_hbm.core.data_phase
            assert (sim_phase is None) == (acc_phase is None)
            if sim_phase is not None:
                assert sim_phase.haddr == acc_phase.haddr

    def test_no_protocol_violations_in_either_half(self):
        sim_hbm, acc_hbm, _, _ = build_split_pair(
            [
                BusTransaction(0, 0x1000, True, HBurst.INCR8, data=list(range(8))),
                BusTransaction(0, 0x1000, False, HBurst.INCR8),
            ]
        )
        run_lockstep(sim_hbm, acc_hbm, 40)
        assert sim_hbm.monitor.ok, [str(v) for v in sim_hbm.monitor.violations]
        assert acc_hbm.monitor.ok, [str(v) for v in acc_hbm.monitor.violations]

    def test_merge_drive_fills_idle_phase_when_nobody_drives(self):
        sim_hbm, acc_hbm, _, _ = build_split_pair(
            [BusTransaction(0, 0x1000, True, HBurst.SINGLE, data=[1], issue_cycle=100)]
        )
        drive = sim_hbm.merge_drive(
            BoundaryDrive(cycle=0, requests={}),
            BoundaryDrive(cycle=0, requests={0: False}),
        )
        assert not drive.address_phase.is_active

    def test_snapshot_restore_rewinds_half_bus(self):
        sim_hbm, acc_hbm, master, memory = build_split_pair(
            [
                BusTransaction(0, 0x1000, True, HBurst.INCR4, data=[1, 2, 3, 4]),
                BusTransaction(0, 0x1010, True, HBurst.INCR4, data=[5, 6, 7, 8]),
            ]
        )
        run_lockstep(sim_hbm, acc_hbm, 6)
        sim_state = sim_hbm.snapshot_state()
        acc_state = acc_hbm.snapshot_state()
        beats_before = list(sim_hbm.recorder.beat_keys())
        for cycle in range(6, 20):
            lockstep_cycle(sim_hbm, acc_hbm, cycle)
        sim_hbm.restore_state(sim_state)
        acc_hbm.restore_state(acc_state)
        assert sim_hbm.recorder.beat_keys() == beats_before
        # replay after restore reaches the same final state
        for cycle in range(6, 20):
            lockstep_cycle(sim_hbm, acc_hbm, cycle)
        assert [memory.read_word(0x1010 + 4 * i) for i in range(4)] == [5, 6, 7, 8]
