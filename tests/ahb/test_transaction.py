"""Unit tests for transaction-level containers and the recorder."""

from __future__ import annotations

import pytest

from repro.ahb.signals import AhbError, HBurst, HResp, HSize
from repro.ahb.transaction import (
    BusTransaction,
    CompletedBeat,
    TransactionRecorder,
)


def beat(master=0, addr=0x0, write=True, data=1, first=True, burst=HBurst.INCR4, resp=HResp.OKAY, cycle=0):
    return CompletedBeat(
        cycle=cycle,
        master_id=master,
        address=addr,
        write=write,
        data=data,
        hresp=resp,
        hburst=burst,
        hsize=HSize.WORD,
        first_beat=first,
    )


class TestBusTransaction:
    def test_beats_inferred_from_burst_type(self):
        txn = BusTransaction(0, 0x0, False, HBurst.INCR8)
        assert txn.n_beats == 8

    def test_write_data_length_must_match_beats(self):
        BusTransaction(0, 0x0, True, HBurst.INCR4, data=[1, 2, 3, 4])
        with pytest.raises(AhbError):
            BusTransaction(0, 0x0, True, HBurst.INCR4, data=[1, 2])

    def test_incr_burst_requires_explicit_length(self):
        txn = BusTransaction(0, 0x0, True, HBurst.INCR, data=[1, 2, 3])
        assert txn.n_beats == 3
        with pytest.raises(AhbError):
            BusTransaction(0, 0x0, False, HBurst.INCR)

    def test_alignment_enforced(self):
        with pytest.raises(AhbError):
            BusTransaction(0, 0x2, False, HBurst.SINGLE, hsize=HSize.WORD)


class TestCompletedBeatKey:
    def test_key_ignores_cycle(self):
        a = beat(cycle=5)
        b = beat(cycle=900)
        assert a.key() == b.key()

    def test_key_distinguishes_content(self):
        assert beat(data=1).key() != beat(data=2).key()
        assert beat(addr=0x0).key() != beat(addr=0x4).key()
        assert beat(write=True).key() != beat(write=False).key()


class TestTransactionRecorder:
    def test_fixed_burst_assembled_into_one_transaction(self):
        recorder = TransactionRecorder()
        recorder.record_beat(beat(addr=0x0, data=1, first=True))
        recorder.record_beat(beat(addr=0x4, data=2, first=False))
        recorder.record_beat(beat(addr=0x8, data=3, first=False))
        recorder.record_beat(beat(addr=0xC, data=4, first=False))
        transactions = recorder.finalize()
        assert len(transactions) == 1
        assert transactions[0].data == [1, 2, 3, 4]
        assert transactions[0].address == 0x0
        assert transactions[0].ok

    def test_single_burst_closes_immediately(self):
        recorder = TransactionRecorder()
        recorder.record_beat(beat(burst=HBurst.SINGLE, first=True))
        assert len(recorder.transactions) == 1

    def test_interleaved_masters_are_kept_separate(self):
        recorder = TransactionRecorder()
        recorder.record_beat(beat(master=0, addr=0x0, data=10, first=True))
        recorder.record_beat(beat(master=1, addr=0x100, data=20, first=True))
        recorder.record_beat(beat(master=0, addr=0x4, data=11, first=False))
        recorder.record_beat(beat(master=1, addr=0x104, data=21, first=False))
        recorder.finalize()
        by_master = {t.master_id: t for t in recorder.transactions}
        assert by_master[0].data == [10, 11]
        assert by_master[1].data == [20, 21]

    def test_new_first_beat_closes_unfinished_transaction(self):
        recorder = TransactionRecorder()
        recorder.record_beat(beat(addr=0x0, data=1, first=True))  # 4-beat burst, aborted
        recorder.record_beat(beat(addr=0x100, data=9, first=True, burst=HBurst.SINGLE))
        transactions = recorder.finalize()
        assert len(transactions) == 2
        assert transactions[0].data == [1]

    def test_error_response_recorded(self):
        recorder = TransactionRecorder()
        recorder.record_beat(beat(resp=HResp.ERROR, burst=HBurst.SINGLE))
        assert not recorder.transactions[0].ok

    def test_seq_without_open_transaction_becomes_single(self):
        recorder = TransactionRecorder()
        recorder.record_beat(beat(addr=0x8, data=3, first=False))
        assert len(recorder.transactions) == 1
        assert recorder.transactions[0].hburst is HBurst.SINGLE

    def test_beat_keys_capture_the_stream(self):
        recorder = TransactionRecorder()
        recorder.record_beat(beat(addr=0x0, data=1))
        recorder.record_beat(beat(addr=0x4, data=2, first=False))
        assert len(recorder.beat_keys()) == 2
        assert recorder.beat_keys()[0] != recorder.beat_keys()[1]

    def test_snapshot_restore_trims_appended_beats(self):
        recorder = TransactionRecorder()
        recorder.record_beat(beat(burst=HBurst.SINGLE))
        state = recorder.snapshot()
        recorder.record_beat(beat(addr=0x4, burst=HBurst.SINGLE))
        recorder.record_beat(beat(addr=0x8, burst=HBurst.SINGLE))
        recorder.restore(state)
        assert len(recorder.beats) == 1
        assert len(recorder.transactions) == 1
