"""Integration tests of the monolithic reference bus."""

from __future__ import annotations

import pytest

from repro.ahb.bus import AhbBus
from repro.ahb.master import TrafficMaster
from repro.ahb.signals import AhbError, HBurst, HResp
from repro.ahb.slave import FifoPeripheralSlave, MemorySlave
from repro.ahb.transaction import BusTransaction
from repro.sim.kernel import CycleKernel


def build_bus(masters, slaves):
    bus = AhbBus()
    for master in masters:
        bus.add_master(master)
    for slave, base, size in slaves:
        bus.add_slave(slave, base, size)
    bus.finalize()
    return bus


def run_bus(bus, cycles):
    kernel = CycleKernel("sys")
    kernel.add_component(bus)
    kernel.run(cycles)
    return kernel


def test_write_then_read_burst_round_trips_through_memory():
    master = TrafficMaster(
        "m0",
        0,
        [
            BusTransaction(0, 0x100, True, HBurst.INCR4, data=[1, 2, 3, 4]),
            BusTransaction(0, 0x100, False, HBurst.INCR4),
        ],
    )
    memory = MemorySlave("mem", 1, 0x0, 0x1000)
    bus = build_bus([master], [(memory, 0x0, 0x1000)])
    run_bus(bus, 30)
    assert master.done
    assert master.completed_transactions[-1].data == [1, 2, 3, 4]
    assert memory.read_word(0x108) == 3
    assert bus.monitor.ok, [str(v) for v in bus.monitor.violations]


def test_duplicate_master_or_slave_ids_rejected():
    bus = AhbBus()
    bus.add_master(TrafficMaster("a", 0))
    with pytest.raises(AhbError):
        bus.add_master(TrafficMaster("b", 0))
    bus.add_slave(MemorySlave("mem", 1, 0x0, 0x100), 0x0, 0x100)
    with pytest.raises(AhbError):
        bus.add_slave(MemorySlave("mem2", 1, 0x1000, 0x100), 0x1000, 0x100)


def test_bus_without_masters_cannot_finalize():
    bus = AhbBus()
    bus.add_slave(MemorySlave("mem", 1, 0x0, 0x100), 0x0, 0x100)
    with pytest.raises(AhbError):
        bus.finalize()


def test_two_masters_share_the_bus_and_both_complete():
    m0 = TrafficMaster("m0", 0, [BusTransaction(0, 0x000, True, HBurst.INCR8, data=list(range(8)))])
    m1 = TrafficMaster("m1", 1, [BusTransaction(1, 0x200, True, HBurst.INCR8, data=list(range(8, 16)))])
    memory = MemorySlave("mem", 2, 0x0, 0x1000)
    bus = build_bus([m0, m1], [(memory, 0x0, 0x1000)])
    run_bus(bus, 60)
    assert m0.done and m1.done
    assert memory.read_word(0x000) == 0
    assert memory.read_word(0x204) == 9
    assert bus.monitor.ok
    # both bursts completed without interleaving errors
    assert len(bus.recorder.finalize()) == 2


def test_fixed_priority_prefers_lower_master_id_at_burst_boundaries():
    # Both masters have traffic from cycle 0; master 0 (higher priority) goes first.
    m0 = TrafficMaster("m0", 0, [BusTransaction(0, 0x000, True, HBurst.INCR4, data=[1] * 4)])
    m1 = TrafficMaster("m1", 1, [BusTransaction(1, 0x100, True, HBurst.INCR4, data=[2] * 4)])
    memory = MemorySlave("mem", 2, 0x0, 0x1000)
    bus = build_bus([m0, m1], [(memory, 0x0, 0x1000)])
    run_bus(bus, 40)
    first_writer = bus.recorder.beats[0].master_id
    assert first_writer == 0


def test_unmapped_access_gets_two_cycle_error_from_default_slave():
    master = TrafficMaster("m0", 0, [BusTransaction(0, 0x9000_0000, False, HBurst.SINGLE)])
    memory = MemorySlave("mem", 1, 0x0, 0x1000)
    bus = build_bus([master], [(memory, 0x0, 0x1000)])
    run_bus(bus, 20)
    assert master.done
    assert master.stats.error_responses == 1
    assert bus.recorder.beats[-1].hresp is HResp.ERROR


def test_wait_state_slave_stretches_transfers_but_preserves_data():
    master = TrafficMaster(
        "m0",
        0,
        [
            BusTransaction(0, 0x0, True, HBurst.INCR4, data=[5, 6, 7, 8]),
            BusTransaction(0, 0x0, False, HBurst.INCR4),
        ],
    )
    slow = MemorySlave("slow", 1, 0x0, 0x1000, read_wait_states=2, write_wait_states=1)
    bus = build_bus([master], [(slow, 0x0, 0x1000)])
    run_bus(bus, 80)
    assert master.done
    assert master.completed_transactions[-1].data == [5, 6, 7, 8]
    assert slow.stats.wait_states > 0
    assert bus.monitor.ok, [str(v) for v in bus.monitor.violations]


def test_wrapping_burst_round_trips():
    master = TrafficMaster(
        "m0",
        0,
        [
            BusTransaction(0, 0x18, True, HBurst.WRAP4, data=[1, 2, 3, 4]),
            BusTransaction(0, 0x18, False, HBurst.WRAP4),
        ],
    )
    memory = MemorySlave("mem", 1, 0x0, 0x1000)
    bus = build_bus([master], [(memory, 0x0, 0x1000)])
    run_bus(bus, 30)
    assert master.completed_transactions[-1].data == [1, 2, 3, 4]
    # the wrap wrote 0x18, 0x1C, then wrapped to 0x10, 0x14
    assert memory.read_word(0x10) == 3
    assert memory.read_word(0x14) == 4
    assert bus.monitor.ok


def test_fifo_peripheral_inserts_waits_but_traffic_completes():
    master = TrafficMaster("m0", 0, [BusTransaction(0, 0x0, False, HBurst.INCR8)])
    fifo = FifoPeripheralSlave("fifo", 1, depth=2, produce_period=3, initial_fill=0)
    bus = build_bus([master], [(fifo, 0x0, 0x1000)])
    run_bus(bus, 120)
    assert master.done
    assert fifo.stats.wait_states > 0
    assert len(master.completed_transactions[0].data) == 8
    assert bus.monitor.ok


def test_bus_records_one_cycle_record_per_cycle():
    master = TrafficMaster("m0", 0, [BusTransaction(0, 0x0, True, HBurst.SINGLE, data=[1])])
    memory = MemorySlave("mem", 1, 0x0, 0x100)
    bus = build_bus([master], [(memory, 0x0, 0x100)])
    run_bus(bus, 10)
    assert len(bus.records) == 10
    assert [record.cycle for record in bus.records] == list(range(10))


def test_all_masters_done_reflects_master_state():
    master = TrafficMaster("m0", 0, [BusTransaction(0, 0x0, True, HBurst.SINGLE, data=[1])])
    memory = MemorySlave("mem", 1, 0x0, 0x100)
    bus = build_bus([master], [(memory, 0x0, 0x100)])
    assert not bus.all_masters_done()
    run_bus(bus, 10)
    assert bus.all_masters_done()


def test_snapshot_restore_replays_identically():
    def build():
        master = TrafficMaster(
            "m0",
            0,
            [
                BusTransaction(0, 0x10, True, HBurst.INCR4, data=[9, 8, 7, 6]),
                BusTransaction(0, 0x10, False, HBurst.INCR4),
            ],
        )
        memory = MemorySlave("mem", 1, 0x0, 0x1000)
        return build_bus([master], [(memory, 0x0, 0x1000)]), master

    bus, master = build()
    kernel = CycleKernel("sys")
    kernel.add_component(bus)
    kernel.run(5)
    state = bus.snapshot_state()
    kernel.run(20)
    final_beats = bus.recorder.beat_keys()
    bus.restore_state(state)
    kernel2 = CycleKernel("resume")
    kernel2.clock.advance(5)
    kernel2.add_component(bus)
    kernel2.run(20)
    assert bus.recorder.beat_keys() == final_beats
