"""Unit tests for the address decoder."""

from __future__ import annotations

import pytest

from repro.ahb.decoder import AddressDecoder, AddressRegion, DecodeError


def test_region_contains_and_end():
    region = AddressRegion(base=0x1000, size=0x100, slave_id=1)
    assert region.end == 0x1100
    assert region.contains(0x1000)
    assert region.contains(0x10FF)
    assert not region.contains(0x1100)
    assert not region.contains(0xFFF)


def test_region_rejects_bad_parameters():
    with pytest.raises(DecodeError):
        AddressRegion(base=-1, size=0x100, slave_id=0)
    with pytest.raises(DecodeError):
        AddressRegion(base=0, size=0, slave_id=0)


def test_overlap_detection():
    a = AddressRegion(base=0x1000, size=0x100, slave_id=0)
    b = AddressRegion(base=0x10F0, size=0x100, slave_id=1)
    c = AddressRegion(base=0x1100, size=0x100, slave_id=2)
    assert a.overlaps(b)
    assert not a.overlaps(c)


def test_decoder_selects_correct_slave():
    decoder = AddressDecoder()
    decoder.add_region(0x0000, 0x1000, slave_id=0, name="rom")
    decoder.add_region(0x1000, 0x1000, slave_id=1, name="ram")
    assert decoder.select(0x0800) == 0
    assert decoder.select(0x1000) == 1
    assert decoder.select(0x1FFF) == 1


def test_decoder_rejects_overlapping_regions():
    decoder = AddressDecoder()
    decoder.add_region(0x0, 0x2000, slave_id=0)
    with pytest.raises(DecodeError):
        decoder.add_region(0x1000, 0x1000, slave_id=1)


def test_unmapped_address_uses_default_slave_or_raises():
    decoder = AddressDecoder(default_slave_id=-1)
    decoder.add_region(0x0, 0x100, slave_id=0)
    assert decoder.select(0x9999_0000) == -1
    strict = AddressDecoder()
    strict.add_region(0x0, 0x100, slave_id=0)
    with pytest.raises(DecodeError):
        strict.select(0x9999_0000)


def test_region_for_returns_region_or_none():
    decoder = AddressDecoder()
    region = decoder.add_region(0x2000, 0x800, slave_id=3, name="periph")
    assert decoder.region_for(0x2400) is region
    assert decoder.region_for(0x3000) is None


def test_slave_ids_lists_mapped_slaves():
    decoder = AddressDecoder(default_slave_id=-1)
    decoder.add_region(0x0, 0x100, slave_id=2)
    decoder.add_region(0x100, 0x100, slave_id=0)
    decoder.add_region(0x200, 0x100, slave_id=2)
    assert decoder.slave_ids() == [0, 2]


def test_copy_is_independent_but_equivalent():
    decoder = AddressDecoder(default_slave_id=-1)
    decoder.add_region(0x0, 0x100, slave_id=0)
    clone = decoder.copy()
    assert clone.select(0x10) == 0
    clone.add_region(0x100, 0x100, slave_id=1)
    # the original does not see the clone's new region
    assert decoder.select(0x150) == -1
