"""Unit tests for bus masters (driven directly, without a bus)."""

from __future__ import annotations

import pytest

from repro.ahb.master import IdleMaster, TrafficMaster
from repro.ahb.signals import AddressPhase, AhbError, DataPhaseResult, HBurst, HResp, HTrans
from repro.ahb.transaction import BusTransaction


def drive_accept(master, cycle):
    """Helper: drive the address phase and immediately accept it."""
    phase = master.drive_address_phase(cycle, granted=True)
    if phase.is_active:
        master.on_address_accepted(cycle, phase)
    return phase


def test_idle_master_never_requests():
    master = IdleMaster("idle", 0)
    assert not master.drive_hbusreq(0)
    phase = master.drive_address_phase(0, granted=True)
    assert not phase.is_active


def test_traffic_master_requests_only_when_transaction_ready():
    master = TrafficMaster(
        "m", 0, [BusTransaction(0, 0x0, True, HBurst.SINGLE, data=[1], issue_cycle=5)]
    )
    assert not master.drive_hbusreq(0)
    assert master.drive_hbusreq(5)
    assert master.drive_hbusreq(9)


def test_traffic_master_sequences_burst_addresses_and_types():
    master = TrafficMaster("m", 0, [BusTransaction(0, 0x100, True, HBurst.INCR4, data=[1, 2, 3, 4])])
    phases = [drive_accept(master, cycle) for cycle in range(4)]
    assert [p.haddr for p in phases] == [0x100, 0x104, 0x108, 0x10C]
    assert [p.htrans for p in phases] == [HTrans.NONSEQ, HTrans.SEQ, HTrans.SEQ, HTrans.SEQ]
    assert all(p.hwrite for p in phases)
    # after the burst, the master drives idle
    assert not master.drive_address_phase(4, granted=True).is_active


def test_traffic_master_holds_address_until_accepted():
    master = TrafficMaster("m", 0, [BusTransaction(0, 0x40, False, HBurst.INCR4)])
    first = master.drive_address_phase(0, granted=True)
    second = master.drive_address_phase(1, granted=True)  # not accepted yet
    assert first.haddr == second.haddr == 0x40
    master.on_address_accepted(1, second)
    third = master.drive_address_phase(2, granted=True)
    assert third.haddr == 0x44


def test_not_granted_master_drives_idle():
    master = TrafficMaster("m", 0, [BusTransaction(0, 0x40, False, HBurst.INCR4)])
    phase = master.drive_address_phase(0, granted=False)
    assert not phase.is_active
    # the burst has not started: the first granted cycle still begins at 0x40
    assert master.drive_address_phase(1, granted=True).haddr == 0x40


def test_write_data_follows_accepted_beats():
    master = TrafficMaster("m", 0, [BusTransaction(0, 0x0, True, HBurst.INCR4, data=[11, 22, 33, 44])])
    accepted = [drive_accept(master, cycle) for cycle in range(4)]
    assert [master.drive_hwdata(phase) for phase in accepted] == [11, 22, 33, 44]


def test_write_data_for_read_beat_raises():
    master = TrafficMaster("m", 0, [BusTransaction(0, 0x0, False, HBurst.SINGLE)])
    phase = drive_accept(master, 0)
    with pytest.raises(AhbError):
        master.drive_hwdata(phase)


def test_read_data_collection_and_completion():
    master = TrafficMaster("m", 0, [BusTransaction(0, 0x0, False, HBurst.INCR4)])
    phases = [drive_accept(master, cycle) for cycle in range(4)]
    for index, phase in enumerate(phases):
        master.on_data_phase_done(index + 1, phase, DataPhaseResult.okay(hrdata=100 + index))
    assert master.done
    assert len(master.completed_transactions) == 1
    assert master.completed_transactions[0].data == [100, 101, 102, 103]
    assert master.stats.beats_completed == 4


def test_error_response_marks_transaction_not_ok():
    master = TrafficMaster("m", 0, [BusTransaction(0, 0x0, True, HBurst.SINGLE, data=[7])])
    phase = drive_accept(master, 0)
    master.on_data_phase_done(1, phase, DataPhaseResult(hready=True, hresp=HResp.ERROR))
    assert master.stats.error_responses == 1
    assert len(master.completed_transactions) == 1
    assert not master.completed_transactions[0].ok


def test_enqueue_validates_master_id():
    master = TrafficMaster("m", 0)
    with pytest.raises(AhbError):
        master.enqueue(BusTransaction(1, 0x0, True, HBurst.SINGLE, data=[1]))
    master.enqueue(BusTransaction(0, 0x0, True, HBurst.SINGLE, data=[1]))
    assert master.drive_hbusreq(0)


def test_unexpected_address_accept_raises():
    master = TrafficMaster("m", 0)
    phase = AddressPhase(master_id=0, haddr=0x0, htrans=HTrans.NONSEQ)
    with pytest.raises(AhbError):
        master.on_address_accepted(0, phase)


def test_data_phase_done_without_outstanding_beat_raises():
    master = TrafficMaster("m", 0)
    phase = AddressPhase(master_id=0, haddr=0x0, htrans=HTrans.NONSEQ)
    with pytest.raises(AhbError):
        master.on_data_phase_done(0, phase, DataPhaseResult.okay())


def test_snapshot_restore_rewinds_master_progress():
    master = TrafficMaster(
        "m",
        0,
        [
            BusTransaction(0, 0x0, True, HBurst.INCR4, data=[1, 2, 3, 4]),
            BusTransaction(0, 0x100, False, HBurst.INCR4),
        ],
    )
    # complete the first transaction
    phases = [drive_accept(master, cycle) for cycle in range(4)]
    for phase in phases:
        master.on_data_phase_done(0, phase, DataPhaseResult.okay())
    state = master.snapshot_state()
    # progress into the second transaction
    more = [drive_accept(master, cycle) for cycle in range(4, 8)]
    for phase in more:
        master.on_data_phase_done(0, phase, DataPhaseResult.okay(hrdata=5))
    assert len(master.completed_transactions) == 2
    master.restore_state(state)
    assert len(master.completed_transactions) == 1
    # the second transaction replays identically after the restore
    replay = [drive_accept(master, cycle) for cycle in range(4, 8)]
    assert [p.haddr for p in replay] == [p.haddr for p in more]


def test_reset_returns_master_to_initial_state():
    master = TrafficMaster("m", 0, [BusTransaction(0, 0x0, True, HBurst.SINGLE, data=[1])])
    drive_accept(master, 0)
    master.reset()
    assert not master.done
    assert master.drive_address_phase(0, granted=True).haddr == 0x0
