"""Unit tests for bus arbitration."""

from __future__ import annotations

import pytest

from repro.ahb.arbiter import (
    Arbiter,
    ArbitrationError,
    FixedPriorityPolicy,
    RoundRobinPolicy,
)


def test_fixed_priority_grants_highest_priority_requester():
    policy = FixedPriorityPolicy([2, 0, 1])  # master 2 has the highest priority
    assert policy.choose({0: True, 1: True, 2: True}, current_grant=0, default_master=0) == 2
    assert policy.choose({0: True, 1: True, 2: False}, current_grant=0, default_master=0) == 0
    assert policy.choose({0: False, 1: True, 2: False}, current_grant=0, default_master=0) == 1


def test_fixed_priority_parks_on_default_when_nobody_requests():
    policy = FixedPriorityPolicy([0, 1])
    assert policy.choose({0: False, 1: False}, current_grant=1, default_master=0) == 0


def test_fixed_priority_rejects_duplicate_ids():
    with pytest.raises(ArbitrationError):
        FixedPriorityPolicy([0, 1, 0])


def test_round_robin_rotates_after_current_grant():
    policy = RoundRobinPolicy([0, 1, 2])
    # current grant 0 -> master 1 has top priority
    assert policy.choose({0: True, 1: True, 2: True}, current_grant=0, default_master=0) == 1
    assert policy.choose({0: True, 1: False, 2: True}, current_grant=1, default_master=0) == 2
    # wraps around
    assert policy.choose({0: True, 1: False, 2: False}, current_grant=2, default_master=0) == 0


def test_round_robin_defaults_when_idle_and_requires_masters():
    policy = RoundRobinPolicy([3, 4])
    assert policy.choose({3: False, 4: False}, current_grant=3, default_master=4) == 4
    with pytest.raises(ArbitrationError):
        RoundRobinPolicy([])


def test_round_robin_handles_unknown_current_grant():
    policy = RoundRobinPolicy([0, 1])
    assert policy.choose({0: True, 1: False}, current_grant=99, default_master=1) == 0


def test_arbiter_tracks_grant_changes_and_parking():
    arbiter = Arbiter(policy=FixedPriorityPolicy([0, 1]), default_master=0)
    assert arbiter.current_grant == 0
    assert arbiter.arbitrate({0: False, 1: True}) == 1
    assert arbiter.arbitrate({0: False, 1: True}) == 1
    assert arbiter.arbitrate({0: False, 1: False}) == 0
    assert arbiter.stats.decisions == 3
    assert arbiter.stats.grant_changes == 2  # 0->1 then 1->0
    assert arbiter.stats.cycles_parked == 1


def test_arbiter_snapshot_restore_round_trip():
    arbiter = Arbiter(policy=FixedPriorityPolicy([0, 1]), default_master=0)
    arbiter.arbitrate({1: True})
    state = arbiter.snapshot()
    arbiter.arbitrate({0: True, 1: False})
    arbiter.restore(state)
    assert arbiter.current_grant == 1


def test_arbiter_reset_returns_to_default():
    arbiter = Arbiter(policy=FixedPriorityPolicy([0, 1]), default_master=0)
    arbiter.arbitrate({1: True})
    arbiter.reset()
    assert arbiter.current_grant == 0
    assert arbiter.stats.decisions == 0


def test_two_identical_arbiters_make_identical_decisions():
    """Both half bus models recompute arbitration locally; the decisions must
    agree for any request sequence (the paper's justification for not sending
    the arbitration result over the channel)."""
    left = Arbiter(policy=FixedPriorityPolicy([0, 1, 2]), default_master=0)
    right = Arbiter(policy=FixedPriorityPolicy([0, 1, 2]), default_master=0)
    sequences = [
        {0: False, 1: True, 2: False},
        {0: True, 1: True, 2: True},
        {0: False, 1: False, 2: True},
        {0: False, 1: False, 2: False},
        {0: True, 1: False, 2: True},
    ]
    for requests in sequences:
        assert left.arbitrate(requests) == right.arbitrate(requests)
