"""Unit tests for the pluggable channel fault models."""

from __future__ import annotations

import random

import pytest

from repro.channel.driver import ChannelEndpoint, ChannelError, SimulatorAcceleratorChannel
from repro.channel.faults import (
    BoundedBufferModel,
    ChannelDegradedError,
    ChannelFaultConfig,
    ChannelFaultConfigError,
    ChannelFaultInjector,
    CorruptionModel,
    DuplicateModel,
    FaultyChannelEndpoint,
    JitterModel,
    LossModel,
    ReorderModel,
    WireFate,
    frame_checksum,
)
from repro.channel.phy import ChannelDirection


# -- configuration ----------------------------------------------------------

def test_default_config_is_ideal():
    assert ChannelFaultConfig().is_ideal


@pytest.mark.parametrize(
    "kwargs",
    [
        {"loss_rate": 0.1},
        {"burst_loss_rate": 0.5},
        {"reorder_rate": 0.1},
        {"duplicate_rate": 0.1},
        {"corruption_rate": 0.1},
        {"jitter_mean": 1e-6},
        {"jitter_spread": 1e-6},
        {"buffer_capacity": 4},
    ],
)
def test_any_fault_knob_clears_is_ideal(kwargs):
    assert not ChannelFaultConfig(**kwargs).is_ideal


@pytest.mark.parametrize(
    "kwargs",
    [
        {"loss_rate": 1.5},
        {"loss_rate": -0.1},
        {"burst_loss_rate": 2.0},
        {"reorder_depth": 0},
        {"buffer_capacity": 0},
        {"window": 0},
        {"max_attempts": 0},
        {"base_rto": 0.0},
        {"rto_backoff": 0.5},
        {"jitter_mean": -1.0},
        {"ack_words": 0},
    ],
)
def test_invalid_config_rejected(kwargs):
    with pytest.raises(ChannelFaultConfigError):
        ChannelFaultConfig(**kwargs)


def test_config_dict_round_trip():
    config = ChannelFaultConfig(
        loss_rate=0.1, burst_loss_rate=0.4, reorder_rate=0.05, seed=17
    )
    assert ChannelFaultConfig.from_dict(config.as_dict()) == config


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ChannelFaultConfigError, match="unknown channel-fault field"):
        ChannelFaultConfig.from_dict({"loss_rtae": 0.1})


def test_derive_rng_is_deterministic_and_coordinate_sensitive():
    config = ChannelFaultConfig(loss_rate=0.1, seed=3)
    a = config.derive_rng("link", "sim_to_acc").random()
    b = config.derive_rng("link", "sim_to_acc").random()
    c = config.derive_rng("link", "acc_to_sim").random()
    assert a == b
    assert a != c


# -- individual models ------------------------------------------------------

def test_loss_model_iid_rates():
    model = LossModel(0.3)
    rng = random.Random(1)
    losses = 0
    for _ in range(10_000):
        fate = WireFate()
        model.apply(rng, fate)
        losses += fate.lost
    assert 0.27 < losses / 10_000 < 0.33


def test_loss_model_gilbert_elliott_bursts():
    """Burst loss clusters: the loss rate in the bad state dominates."""
    model = LossModel(0.0, burst_rate=1.0, burst_enter=0.1, burst_exit=0.2)
    rng = random.Random(2)
    fates = []
    for _ in range(5_000):
        fate = WireFate()
        model.apply(rng, fate)
        fates.append(fate.lost)
    losses = sum(fates)
    assert losses > 0
    # losses must arrive in runs, not i.i.d.: count adjacent loss pairs
    pairs = sum(1 for i in range(1, len(fates)) if fates[i] and fates[i - 1])
    assert pairs > losses * 0.3  # i.i.d. at this rate would give ~ losses * rate


def test_reorder_model_depth_bounds():
    model = ReorderModel(1.0, depth=3)
    rng = random.Random(3)
    depths = set()
    for _ in range(200):
        fate = WireFate()
        model.apply(rng, fate)
        depths.add(fate.reorder_depth)
    assert depths == {1, 2, 3}


def test_duplicate_and_corruption_models():
    rng = random.Random(4)
    fate = WireFate()
    DuplicateModel(1.0).apply(rng, fate)
    CorruptionModel(1.0).apply(rng, fate)
    assert fate.duplicates == 1 and fate.corrupted


def test_jitter_model_range():
    model = JitterModel(1e-6, 2e-6)
    rng = random.Random(5)
    for _ in range(100):
        fate = WireFate()
        model.apply(rng, fate)
        assert 1e-6 <= fate.jitter < 3e-6


def test_bounded_buffer_overflows_mark_fate():
    model = BoundedBufferModel(capacity=2)
    fate = WireFate(reorder_depth=2, duplicates=1)
    model.apply(random.Random(6), fate)
    assert fate.lost and fate.overflowed
    calm = WireFate(reorder_depth=1)
    model.apply(random.Random(6), calm)
    assert not calm.lost


def test_injector_same_seed_same_schedule():
    config = ChannelFaultConfig(
        loss_rate=0.2, duplicate_rate=0.1, corruption_rate=0.1, reorder_rate=0.2,
        jitter_mean=1e-6, jitter_spread=1e-6, seed=7,
    )
    def schedule():
        injector = ChannelFaultInjector(config, config.derive_rng("x"))
        return [vars(injector.wire_fate()).copy() for _ in range(500)]
    assert schedule() == schedule()


def test_injector_skips_inactive_models():
    config = ChannelFaultConfig(loss_rate=0.5)
    injector = ChannelFaultInjector(config, config.derive_rng("x"))
    assert len(injector.models) == 1


# -- checksum ---------------------------------------------------------------

def test_frame_checksum_detects_any_single_bit_flip():
    words = [0xDEADBEEF, 0x12345678, 7]
    checksum = frame_checksum(words)
    for index in range(len(words)):
        for bit in range(32):
            corrupted = list(words)
            corrupted[index] ^= 1 << bit
            assert frame_checksum(corrupted) != checksum


# -- faulty endpoint --------------------------------------------------------

def _faulty(config: ChannelFaultConfig, context: str = "t") -> FaultyChannelEndpoint:
    endpoint = ChannelEndpoint(keep_log=True)
    injector = ChannelFaultInjector(config, config.derive_rng(context))
    return FaultyChannelEndpoint(endpoint, injector)


def test_faulty_endpoint_requires_queueing_endpoint():
    endpoint = ChannelEndpoint(keep_log=False)
    config = ChannelFaultConfig(loss_rate=0.5)
    with pytest.raises(ChannelError, match="keep_log=True"):
        FaultyChannelEndpoint(endpoint, ChannelFaultInjector(config, config.derive_rng("x")))


def test_faulty_endpoint_drops_frames():
    link = _faulty(ChannelFaultConfig(loss_rate=1.0))
    link.write(ChannelDirection.SIM_TO_ACC, [1, 2, 3])
    assert not link.readable(ChannelDirection.SIM_TO_ACC)
    assert link.fault_stats.drops == 1


def test_faulty_endpoint_corruption_is_checksum_detectable():
    link = _faulty(ChannelFaultConfig(corruption_rate=1.0))
    words = [5, 6, 7]
    framed = words + [frame_checksum(words)]
    link.write(ChannelDirection.SIM_TO_ACC, framed)
    message = link.read(ChannelDirection.SIM_TO_ACC)
    assert message.words != framed
    assert frame_checksum(message.words[:-1]) != message.words[-1]
    assert link.fault_stats.corruptions == 1


def test_faulty_endpoint_duplicates_enqueue_copies_and_charge():
    link = _faulty(ChannelFaultConfig(duplicate_rate=1.0))
    link.write(ChannelDirection.SIM_TO_ACC, [9])
    assert link.pending(ChannelDirection.SIM_TO_ACC) == 2
    assert link.stats.accesses == 2  # the copy paid wire time too
    assert link.fault_stats.duplicates == 1


def test_faulty_endpoint_reorder_holds_frame_behind_younger_writes():
    # seed 1 draws reorder on the first wire fate and none on the second
    config = ChannelFaultConfig(reorder_rate=0.5, reorder_depth=1, seed=1)
    link = _faulty(config)
    link.write(ChannelDirection.SIM_TO_ACC, [1])  # held back (depth 1)
    link.write(ChannelDirection.SIM_TO_ACC, [2])  # overtakes; releases [1] behind it
    drained = link.drain(ChannelDirection.SIM_TO_ACC)
    assert [m.words for m in drained] == [[2], [1]]
    assert link.fault_stats.reorder_events == 1
    assert link.fault_stats.max_reorder_depth == 1


def test_faulty_endpoint_held_frames_flush_when_link_idles():
    config = ChannelFaultConfig(reorder_rate=1.0, reorder_depth=5)
    link = _faulty(config)
    link.write(ChannelDirection.SIM_TO_ACC, [1])
    # Nothing younger ever arrives; the frame must not be stuck forever.
    assert link.readable(ChannelDirection.SIM_TO_ACC)
    assert link.read(ChannelDirection.SIM_TO_ACC).words == [1]


def test_faulty_endpoint_bounded_buffer_counts_overflows():
    config = ChannelFaultConfig(reorder_rate=1.0, reorder_depth=3, buffer_capacity=1)
    link = _faulty(config)
    for value in range(20):
        link.write(ChannelDirection.SIM_TO_ACC, [value])
    assert link.fault_stats.buffer_overflows > 0
    assert link.fault_stats.drops == 0  # overflow accounted separately


def test_faulty_endpoint_ideal_config_passes_bytes_untouched():
    link = _faulty(ChannelFaultConfig())
    link.write(ChannelDirection.SIM_TO_ACC, [1, 2, 3], purpose="x", target_cycle=4)
    message = link.read(ChannelDirection.SIM_TO_ACC)
    assert message.words == [1, 2, 3]
    assert message.purpose == "x"


# -- degraded error ---------------------------------------------------------

def test_degraded_error_structure():
    error = ChannelDegradedError(
        direction=ChannelDirection.ACC_TO_SIM,
        purpose="sync",
        target_cycle=42,
        attempts=8,
        limit=8,
        elapsed=1.25e-3,
    )
    assert isinstance(error, ChannelError)
    payload = error.as_dict()
    assert payload["direction"] == "acc_to_sim"
    assert payload["target_cycle"] == 42
    assert payload["attempts"] == payload["limit"] == 8
    assert "give-up threshold 8" in str(error)


def test_channel_endpoint_alias_is_the_channel_class():
    assert ChannelEndpoint is SimulatorAcceleratorChannel
