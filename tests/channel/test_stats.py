"""Unit tests for channel traffic accounting."""

from __future__ import annotations

import pytest

from repro.channel.phy import ChannelDirection, ChannelTimingParams
from repro.channel.stats import ChannelStats, compare_traffic


@pytest.fixture
def stats():
    return ChannelStats(params=ChannelTimingParams())


def test_record_access_accumulates_time_and_counters(stats):
    time = stats.record_access(ChannelDirection.SIM_TO_ACC, 5, purpose="drive", target_cycle=3)
    assert time == pytest.approx(12.2e-6 + 5 * 49.95e-9)
    assert stats.accesses == 1
    assert stats.words == 5
    assert stats.total_time == pytest.approx(time)
    assert stats.per_purpose_accesses == {"drive": 1}
    assert stats.log[0].target_cycle == 3


def test_startup_and_payload_split(stats):
    stats.record_access(ChannelDirection.SIM_TO_ACC, 10)
    stats.record_access(ChannelDirection.ACC_TO_SIM, 10)
    assert stats.startup_time == pytest.approx(2 * 12.2e-6)
    assert stats.payload_time == pytest.approx(10 * 49.95e-9 + 10 * 75.73e-9)


def test_per_direction_counters(stats):
    stats.record_access(ChannelDirection.SIM_TO_ACC, 1)
    stats.record_access(ChannelDirection.SIM_TO_ACC, 2)
    stats.record_access(ChannelDirection.ACC_TO_SIM, 3)
    assert stats.per_direction_accesses[ChannelDirection.SIM_TO_ACC] == 2
    assert stats.per_direction_words[ChannelDirection.ACC_TO_SIM] == 3


def test_derived_per_cycle_metrics(stats):
    for _ in range(10):
        stats.record_access(ChannelDirection.SIM_TO_ACC, 4)
    assert stats.words_per_access() == pytest.approx(4.0)
    assert stats.accesses_per_cycle(5) == pytest.approx(2.0)
    assert stats.time_per_cycle(5) == pytest.approx(stats.total_time / 5)
    assert stats.accesses_per_cycle(0) == 0.0


def test_log_can_be_disabled():
    stats = ChannelStats(params=ChannelTimingParams(), keep_log=False)
    stats.record_access(ChannelDirection.SIM_TO_ACC, 1)
    assert stats.accesses == 1
    assert stats.log == []


def test_reset_clears_everything(stats):
    stats.record_access(ChannelDirection.SIM_TO_ACC, 1)
    stats.reset()
    assert stats.accesses == 0
    assert stats.total_time == 0.0
    assert stats.per_purpose_accesses == {}


def test_as_dict_summary(stats):
    stats.record_access(ChannelDirection.ACC_TO_SIM, 7, purpose="flush")
    payload = stats.as_dict()
    assert payload["accesses"] == 1
    assert payload["acc_to_sim_accesses"] == 1
    assert payload["per_purpose"] == {"flush": 1}


def test_compare_traffic_reports_reduction():
    params = ChannelTimingParams()
    baseline = ChannelStats(params=params)
    optimized = ChannelStats(params=params)
    for _ in range(200):
        baseline.record_access(ChannelDirection.SIM_TO_ACC, 2)
    for _ in range(10):
        optimized.record_access(ChannelDirection.SIM_TO_ACC, 40)
    comparison = compare_traffic(baseline, optimized, committed_cycles=100)
    assert comparison["access_reduction"] == pytest.approx(0.95)
    assert comparison["time_reduction"] > 0.9
    assert comparison["baseline_accesses_per_cycle"] == pytest.approx(2.0)
    assert comparison["optimized_words_per_access"] == pytest.approx(40.0)
