"""Unit tests for the layered channel transport."""

from __future__ import annotations

import pytest

from repro.channel.driver import ChannelError, SimulatorAcceleratorChannel
from repro.channel.phy import ChannelDirection, ChannelTimingParams, ZERO_OVERHEAD_CHANNEL


def test_write_then_read_delivers_message_in_order():
    channel = SimulatorAcceleratorChannel()
    channel.write(ChannelDirection.SIM_TO_ACC, [1, 2, 3], purpose="a", target_cycle=0)
    channel.write(ChannelDirection.SIM_TO_ACC, [4], purpose="b", target_cycle=1)
    first = channel.read(ChannelDirection.SIM_TO_ACC)
    second = channel.read(ChannelDirection.SIM_TO_ACC)
    assert first.words == [1, 2, 3] and first.purpose == "a"
    assert second.words == [4] and second.purpose == "b"


def test_directions_are_independent_queues():
    channel = SimulatorAcceleratorChannel()
    channel.write(ChannelDirection.SIM_TO_ACC, [1])
    assert channel.pending(ChannelDirection.SIM_TO_ACC) == 1
    assert channel.pending(ChannelDirection.ACC_TO_SIM) == 0
    with pytest.raises(ChannelError):
        channel.read(ChannelDirection.ACC_TO_SIM)


def test_write_returns_and_accumulates_modelled_time():
    channel = SimulatorAcceleratorChannel()
    time = channel.write(ChannelDirection.ACC_TO_SIM, list(range(10)))
    assert time == pytest.approx(12.2e-6 + 10 * 75.73e-9)
    assert channel.stats.total_time == pytest.approx(time)
    assert channel.stats.accesses == 1


def test_layer_times_sum_to_startup_overhead_per_access():
    channel = SimulatorAcceleratorChannel()
    channel.write(ChannelDirection.SIM_TO_ACC, [1])
    channel.write(ChannelDirection.SIM_TO_ACC, [2])
    assert channel.layer_times.total == pytest.approx(2 * 12.2e-6)
    assert channel.layer_times.api > 0
    assert channel.layer_times.driver > 0
    assert channel.layer_times.physical > 0


def test_zero_overhead_channel_has_zero_layer_times():
    channel = SimulatorAcceleratorChannel(params=ZERO_OVERHEAD_CHANNEL)
    channel.write(ChannelDirection.SIM_TO_ACC, [1, 2])
    assert channel.layer_times.total == 0.0
    assert channel.stats.total_time == pytest.approx(2 * 49.95e-9)


def test_drain_returns_all_pending_messages():
    channel = SimulatorAcceleratorChannel()
    for index in range(3):
        channel.write(ChannelDirection.ACC_TO_SIM, [index])
    drained = channel.drain(ChannelDirection.ACC_TO_SIM)
    assert [m.words for m in drained] == [[0], [1], [2]]
    assert channel.pending(ChannelDirection.ACC_TO_SIM) == 0


def test_reading_does_not_charge_extra_time():
    channel = SimulatorAcceleratorChannel()
    channel.write(ChannelDirection.SIM_TO_ACC, [1])
    before = channel.stats.total_time
    channel.read(ChannelDirection.SIM_TO_ACC)
    assert channel.stats.total_time == before


def test_reset_clears_queues_and_stats():
    channel = SimulatorAcceleratorChannel()
    channel.write(ChannelDirection.SIM_TO_ACC, [1])
    channel.reset()
    assert channel.stats.accesses == 0
    assert channel.pending(ChannelDirection.SIM_TO_ACC) == 0


def test_custom_channel_parameters_are_respected():
    params = ChannelTimingParams(
        startup_overhead=1e-6, sim_to_acc_word_time=1e-9, acc_to_sim_word_time=2e-9
    )
    channel = SimulatorAcceleratorChannel(params=params)
    time = channel.write(ChannelDirection.SIM_TO_ACC, [0] * 100)
    assert time == pytest.approx(1e-6 + 100e-9)


def test_readable_polls_without_raising():
    channel = SimulatorAcceleratorChannel()
    assert not channel.readable(ChannelDirection.SIM_TO_ACC)
    channel.write(ChannelDirection.SIM_TO_ACC, [1])
    assert channel.readable(ChannelDirection.SIM_TO_ACC)
    assert not channel.readable(ChannelDirection.ACC_TO_SIM)
    channel.read(ChannelDirection.SIM_TO_ACC)
    assert not channel.readable(ChannelDirection.SIM_TO_ACC)


def test_empty_read_diagnostic_reports_expectation_and_depths():
    channel = SimulatorAcceleratorChannel()
    channel.write(ChannelDirection.SIM_TO_ACC, [1, 2])
    with pytest.raises(ChannelError) as excinfo:
        channel.read(ChannelDirection.ACC_TO_SIM, purpose="sync_response")
    message = str(excinfo.value)
    assert "acc_to_sim" in message
    assert "'sync_response'" in message
    assert "sim_to_acc=1 pending" in message
    assert "poll readable() before reading" in message
