"""Unit tests for the boundary packetizer."""

from __future__ import annotations

import pytest

from repro.ahb.half_bus import BoundaryDrive
from repro.ahb.signals import AddressPhase, DataPhaseResult, HBurst, HResp, HSize, HTrans
from repro.channel.packet import BoundaryPacketizer, PacketError


@pytest.fixture
def packetizer():
    return BoundaryPacketizer(master_ids=[0, 1, 2], interrupt_names=["irq_dma", "irq_timer"])


def sample_phase():
    return AddressPhase(
        master_id=2,
        haddr=0x1234_5678,
        htrans=HTrans.SEQ,
        hwrite=True,
        hsize=HSize.WORD,
        hburst=HBurst.INCR8,
        hprot=0x3,
    )


def test_requests_only_packet_is_one_word(packetizer):
    words = packetizer.encode(requests={0: True, 1: False, 2: True})
    assert len(words) == 1
    decoded = packetizer.decode(words)
    assert decoded.requests == {0: True, 1: False, 2: True}
    assert decoded.address_phase is None
    assert decoded.response is None


def test_full_cycle_record_round_trips(packetizer):
    response = DataPhaseResult(hready=True, hresp=HResp.OKAY, hrdata=0xCAFEBABE)
    words = packetizer.encode(
        requests={0: True},
        address_phase=sample_phase(),
        hwdata=0xDEADBEEF,
        response=response,
        interrupts={"irq_dma": True},
    )
    decoded = packetizer.decode(words)
    assert decoded.address_phase == sample_phase()
    assert decoded.hwdata == 0xDEADBEEF
    assert decoded.response == response
    assert decoded.requests[0] is True and decoded.requests[1] is False
    assert decoded.interrupts == {"irq_dma": True, "irq_timer": False}


def test_response_without_read_data_round_trips(packetizer):
    words = packetizer.encode_response(DataPhaseResult.wait())
    decoded = packetizer.decode(words)
    assert decoded.response == DataPhaseResult.wait()
    assert decoded.response.hrdata is None


def test_conventional_cycle_payload_is_at_most_five_words(packetizer):
    """The paper observes the per-cycle exchange does not exceed five words."""
    drive_words = packetizer.encode_drive(
        BoundaryDrive(
            cycle=0,
            requests={0: True, 1: False, 2: False},
            address_phase=sample_phase(),
            hwdata=0x1111_2222,
        )
    )
    reply_words = packetizer.encode_response(DataPhaseResult.okay(hrdata=0x3333_4444))
    assert len(drive_words) <= 5
    assert len(reply_words) <= 5


def test_word_count_helpers_match_encoding(packetizer):
    drive = BoundaryDrive(cycle=0, requests={0: True}, address_phase=sample_phase())
    assert packetizer.drive_word_count(drive) == len(packetizer.encode_drive(drive))
    assert packetizer.response_word_count(None) == len(packetizer.encode_response(None))


def test_decode_rejects_truncated_packets(packetizer):
    words = packetizer.encode(requests={}, address_phase=sample_phase())
    with pytest.raises(PacketError):
        packetizer.decode(words[:-1])
    with pytest.raises(PacketError):
        packetizer.decode([])


def test_decode_rejects_trailing_words(packetizer):
    words = packetizer.encode(requests={0: True})
    with pytest.raises(PacketError):
        packetizer.decode(words + [0])


def test_too_many_masters_or_interrupts_rejected():
    with pytest.raises(PacketError):
        BoundaryPacketizer(master_ids=list(range(9)))
    with pytest.raises(PacketError):
        BoundaryPacketizer(master_ids=[0], interrupt_names=[f"irq{i}" for i in range(9)])


def test_addresses_are_masked_to_32_bits(packetizer):
    phase = AddressPhase(master_id=0, haddr=0x1_0000_0004, htrans=HTrans.NONSEQ)
    decoded = packetizer.decode(packetizer.encode(requests={}, address_phase=phase))
    assert decoded.address_phase.haddr == 0x4
