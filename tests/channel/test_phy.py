"""Unit tests for the channel timing parameters."""

from __future__ import annotations

import pytest

from repro.channel.phy import (
    ChannelDirection,
    ChannelLayerBreakdown,
    ChannelTimingParams,
    FAST_CHANNEL,
    IPROVE_PCI_CHANNEL,
    ZERO_OVERHEAD_CHANNEL,
)


def test_paper_constants_are_the_defaults():
    params = ChannelTimingParams()
    assert params.startup_overhead == pytest.approx(12.2e-6)
    assert params.sim_to_acc_word_time == pytest.approx(49.95e-9)
    assert params.acc_to_sim_word_time == pytest.approx(75.73e-9)
    assert IPROVE_PCI_CHANNEL == params


def test_access_time_is_startup_plus_payload():
    params = ChannelTimingParams()
    time = params.access_time(ChannelDirection.SIM_TO_ACC, 100)
    assert time == pytest.approx(12.2e-6 + 100 * 49.95e-9)
    time_back = params.access_time(ChannelDirection.ACC_TO_SIM, 100)
    assert time_back == pytest.approx(12.2e-6 + 100 * 75.73e-9)


def test_zero_word_access_costs_only_startup():
    params = ChannelTimingParams()
    assert params.access_time(ChannelDirection.SIM_TO_ACC, 0) == pytest.approx(12.2e-6)


def test_negative_word_count_rejected():
    with pytest.raises(ValueError):
        ChannelTimingParams().access_time(ChannelDirection.SIM_TO_ACC, -1)


def test_negative_parameters_rejected():
    with pytest.raises(ValueError):
        ChannelTimingParams(startup_overhead=-1.0)
    with pytest.raises(ValueError):
        ChannelTimingParams(sim_to_acc_word_time=-1.0)


def test_amortized_word_time_decreases_with_burst_size():
    """The whole point of packetizing: bigger bursts amortise the startup."""
    params = ChannelTimingParams()
    costs = [
        params.amortized_word_time(ChannelDirection.SIM_TO_ACC, words)
        for words in (1, 5, 64, 1024)
    ]
    assert costs == sorted(costs, reverse=True)
    assert costs[0] > 100 * costs[-1]


def test_amortized_cost_requires_positive_words():
    with pytest.raises(ValueError):
        ChannelTimingParams().amortized_word_time(ChannelDirection.SIM_TO_ACC, 0)


def test_breakeven_words_is_far_above_per_cycle_payload():
    """A single cycle's exchange (<= 5 words) is far below the break-even
    size, which is why the conventional scheme is startup-dominated."""
    params = ChannelTimingParams()
    assert params.breakeven_words(ChannelDirection.SIM_TO_ACC) > 200
    assert params.breakeven_words(ChannelDirection.ACC_TO_SIM) > 100


def test_direction_other_flips():
    assert ChannelDirection.SIM_TO_ACC.other is ChannelDirection.ACC_TO_SIM
    assert ChannelDirection.ACC_TO_SIM.other is ChannelDirection.SIM_TO_ACC


def test_canned_channel_variants_ordering():
    assert FAST_CHANNEL.startup_overhead < IPROVE_PCI_CHANNEL.startup_overhead
    assert ZERO_OVERHEAD_CHANNEL.startup_overhead == 0.0


def test_layer_breakdown_scaling_preserves_proportions():
    breakdown = ChannelLayerBreakdown()
    scaled = breakdown.scaled_to(12.2e-6)
    assert scaled.total == pytest.approx(12.2e-6)
    assert scaled.api_overhead / scaled.driver_overhead == pytest.approx(
        breakdown.api_overhead / breakdown.driver_overhead
    )
    with pytest.raises(ValueError):
        ChannelLayerBreakdown(0.0, 0.0, 0.0).scaled_to(1.0)


@pytest.mark.parametrize("total", [0.0, -1e-6])
def test_layer_breakdown_rejects_non_positive_scale_target(total):
    with pytest.raises(ValueError, match="non-positive total"):
        ChannelLayerBreakdown().scaled_to(total)


@pytest.mark.parametrize("total", [float("nan"), float("inf"), float("-inf")])
def test_layer_breakdown_rejects_non_finite_scale_target(total):
    with pytest.raises(ValueError, match="non-finite total"):
        ChannelLayerBreakdown().scaled_to(total)


def test_zero_breakdown_error_names_the_free_channel_escape_hatch():
    with pytest.raises(ValueError, match=r"ChannelLayerBreakdown\(0\.0, 0\.0, 0\.0\)"):
        ChannelLayerBreakdown(0.0, 0.0, 0.0).scaled_to(1.0)
