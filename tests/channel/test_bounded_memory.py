"""Channel memory stays bounded on long engine runs.

The seed retained every message written to the channel (the engines write
for cost accounting but never read), so memory grew linearly with target
cycles.  In fire-and-forget accounting mode (``keep_log=False``, the
engines' configuration) nothing is retained: queue lengths and the stats
log stay empty no matter how long the run is, so a 10M-cycle run holds
constant memory.
"""

from __future__ import annotations

from repro.channel.driver import SimulatorAcceleratorChannel
from repro.channel.phy import ChannelDirection
from repro.core import CoEmulationConfig, OperatingMode, OptimisticCoEmulation
from repro.workloads import als_streaming_soc


def test_fire_and_forget_mode_retains_nothing():
    channel = SimulatorAcceleratorChannel(keep_log=False)
    for index in range(1000):
        channel.write(ChannelDirection.SIM_TO_ACC, [1, 2, 3], purpose="x", target_cycle=index)
        channel.charge(ChannelDirection.ACC_TO_SIM, 2, purpose="y", target_cycle=index)
    assert channel.pending(ChannelDirection.SIM_TO_ACC) == 0
    assert channel.pending(ChannelDirection.ACC_TO_SIM) == 0
    assert channel.stats.log == []
    # accounting is unaffected by the missing retention
    assert channel.stats.accesses == 2000
    assert channel.stats.words == 5000


def test_logging_mode_still_queues_messages():
    channel = SimulatorAcceleratorChannel(keep_log=True)
    channel.write(ChannelDirection.SIM_TO_ACC, [7, 8], purpose="drive")
    assert channel.pending(ChannelDirection.SIM_TO_ACC) == 1
    message = channel.read(ChannelDirection.SIM_TO_ACC)
    assert message.words == [7, 8]
    # charge() never queues, even in logging mode
    channel.charge(ChannelDirection.SIM_TO_ACC, 4, purpose="drive")
    assert channel.pending(ChannelDirection.SIM_TO_ACC) == 0
    assert len(channel.stats.log) == 2


def test_engine_run_holds_channel_queues_empty():
    """Proxy for the 1M-cycle acceptance run: after a long optimistic run in
    the engines' default configuration the channel retains no messages, so
    queue length is trivially bounded by the LOB depth."""
    sim_hbm, acc_hbm, _ = als_streaming_soc(n_bursts=600).build_split()
    config = CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=20_000)
    engine = OptimisticCoEmulation(sim_hbm, acc_hbm, config)
    result = engine.run()
    assert result.committed_cycles == 20_000
    for direction in ChannelDirection:
        assert engine.channel.pending(direction) <= config.lob_depth
        assert engine.channel.pending(direction) == 0
    assert engine.channel.stats.log == []
