"""Unit tests for the selective-repeat reliability layer."""

from __future__ import annotations

import pytest

from repro.channel.driver import ChannelEndpoint
from repro.channel.faults import (
    ChannelDegradedError,
    ChannelFaultConfig,
    ChannelFaultInjector,
    FaultyChannelEndpoint,
)
from repro.channel.phy import ChannelDirection
from repro.channel.reliability import ReliableStream, SelectiveRepeatLink
from repro.channel.stats import FaultStats


def make_link(config: ChannelFaultConfig, context: str = "link") -> SelectiveRepeatLink:
    channel = ChannelEndpoint(keep_log=False)
    channel.stats.faults = FaultStats()
    injector = ChannelFaultInjector(
        config, config.derive_rng(context, "sim_to_acc"), stats=channel.stats.faults
    )
    return SelectiveRepeatLink(channel, ChannelDirection.SIM_TO_ACC, config, injector)


def make_stream(
    config: ChannelFaultConfig, context: str = "stream"
) -> ReliableStream:
    endpoint = ChannelEndpoint(keep_log=True)
    injector = ChannelFaultInjector(config, config.derive_rng(context))
    return ReliableStream(
        FaultyChannelEndpoint(endpoint, injector), ChannelDirection.SIM_TO_ACC, config
    )


# -- modelled link ----------------------------------------------------------

def test_ideal_link_costs_one_frame_plus_one_ack():
    config = ChannelFaultConfig()
    link = make_link(config)
    total = link.deliver(4, "sync", 0)
    params = link.channel.params
    expected = params.access_time(
        ChannelDirection.SIM_TO_ACC, 4 + config.frame_overhead_words
    ) + params.access_time(ChannelDirection.ACC_TO_SIM, config.ack_words)
    assert total == pytest.approx(expected)
    assert link.stats.retransmissions == 0


def test_lossy_link_pays_retransmissions_and_rto():
    config = ChannelFaultConfig(loss_rate=0.3, max_attempts=50, seed=5)
    link = make_link(config)
    total = sum(link.deliver(4, "sync", cycle) for cycle in range(500))
    stats = link.stats
    assert stats.retransmissions > 0
    assert stats.rto_events > 0
    assert stats.rto_wait_time > 0
    # the wire carried more frames than messages
    assert stats.attempts > 500
    ideal = make_link(ChannelFaultConfig())
    ideal_total = sum(ideal.deliver(4, "sync", cycle) for cycle in range(500))
    assert total > ideal_total


def test_link_same_seed_identical_cost_and_stats():
    config = ChannelFaultConfig(
        loss_rate=0.1, duplicate_rate=0.05, corruption_rate=0.02, reorder_rate=0.1,
        jitter_mean=1e-6, jitter_spread=2e-6, max_attempts=30, seed=11,
    )
    def run():
        link = make_link(config)
        total = sum(link.deliver(3, "sync", cycle) for cycle in range(400))
        return total, link.stats.as_dict()
    assert run() == run()


def test_link_rto_backs_off_exponentially():
    """With loss_rate=1.0 every attempt times out; waits must grow then cap."""
    config = ChannelFaultConfig(
        loss_rate=1.0, max_attempts=6, base_rto=1e-4, rto_backoff=2.0, max_rto=4e-4
    )
    link = make_link(config)
    with pytest.raises(ChannelDegradedError):
        link.deliver(1, "sync", 0)
    # waits: 1e-4 + 2e-4 + 4e-4 (cap) + 4e-4 + 4e-4 + 4e-4
    assert link.stats.rto_wait_time == pytest.approx(19e-4)


def test_link_gives_up_with_structured_error():
    config = ChannelFaultConfig(loss_rate=1.0, max_attempts=4)
    link = make_link(config)
    with pytest.raises(ChannelDegradedError) as excinfo:
        link.deliver(2, "conservative_drive", 33)
    error = excinfo.value
    assert error.attempts == 4
    assert error.limit == 4
    assert error.purpose == "conservative_drive"
    assert error.target_cycle == 33
    assert error.elapsed > 0


def test_link_duplicates_charge_extra_accesses():
    config = ChannelFaultConfig(duplicate_rate=1.0, seed=2)
    link = make_link(config)
    link.deliver(4, "sync", 0)
    # data + duplicate copy + ack (the ack's own duplicate draw also fires)
    assert link.stats.duplicates >= 1
    assert link.stats.duplicates_suppressed >= 1
    assert link.channel.stats.accesses >= 3


# -- byte-level stream ------------------------------------------------------

def _payloads(n: int):
    return [[index, index * 7, index ^ 0x5A] for index in range(n)]


def test_stream_ideal_delivers_in_order():
    stream = make_stream(ChannelFaultConfig())
    payloads = _payloads(50)
    assert stream.transfer(payloads) == payloads
    assert stream.report.delivered == 50


@pytest.mark.parametrize(
    "config",
    [
        ChannelFaultConfig(loss_rate=0.15, max_attempts=30, seed=21),
        ChannelFaultConfig(duplicate_rate=0.2, seed=22),
        ChannelFaultConfig(corruption_rate=0.15, max_attempts=30, seed=23),
        ChannelFaultConfig(reorder_rate=0.3, reorder_depth=4, seed=24),
        ChannelFaultConfig(
            loss_rate=0.05, burst_loss_rate=0.5, burst_enter=0.05, burst_exit=0.3,
            duplicate_rate=0.05, corruption_rate=0.05, reorder_rate=0.1,
            jitter_mean=1e-6, jitter_spread=2e-6, buffer_capacity=4,
            window=8, max_attempts=40, seed=25,
        ),
    ],
    ids=["loss", "duplicates", "corruption", "reorder", "everything"],
)
def test_stream_exactly_once_in_order_under_faults(config):
    stream = make_stream(config)
    payloads = _payloads(120)
    assert stream.transfer(payloads) == payloads
    assert stream.report.delivered == 120


def test_stream_detects_corruption_via_checksum():
    config = ChannelFaultConfig(corruption_rate=0.3, max_attempts=50, seed=31)
    stream = make_stream(config)
    payloads = _payloads(80)
    assert stream.transfer(payloads) == payloads
    assert stream.report.checksum_failures > 0


def test_stream_suppresses_duplicates():
    config = ChannelFaultConfig(duplicate_rate=0.5, seed=32)
    stream = make_stream(config)
    payloads = _payloads(60)
    assert stream.transfer(payloads) == payloads
    assert stream.report.duplicates_suppressed > 0


def test_stream_sack_rescues_out_of_order_segments():
    config = ChannelFaultConfig(loss_rate=0.2, window=8, max_attempts=40, seed=33)
    stream = make_stream(config)
    payloads = _payloads(100)
    assert stream.transfer(payloads) == payloads
    assert stream.report.sack_rescues > 0


def test_stream_gives_up_on_dead_link():
    config = ChannelFaultConfig(loss_rate=1.0, max_attempts=3)
    stream = make_stream(config)
    with pytest.raises(ChannelDegradedError) as excinfo:
        stream.transfer([[1, 2]])
    assert excinfo.value.limit == 3


def test_stream_window_one_degenerates_to_stop_and_wait():
    config = ChannelFaultConfig(loss_rate=0.2, window=1, max_attempts=40, seed=34)
    stream = make_stream(config)
    payloads = _payloads(30)
    assert stream.transfer(payloads) == payloads


def test_stream_deterministic_for_same_seed():
    config = ChannelFaultConfig(
        loss_rate=0.1, duplicate_rate=0.1, reorder_rate=0.1, max_attempts=40, seed=35
    )
    def run():
        stream = make_stream(config)
        stream.transfer(_payloads(60))
        return stream.report.elapsed, stream.report.fault_stats.as_dict()
    assert run() == run()


def test_stream_empty_transfer():
    stream = make_stream(ChannelFaultConfig(loss_rate=0.5))
    assert stream.transfer([]) == []
