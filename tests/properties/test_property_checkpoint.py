"""Checkpoint fast-copy protocol equivalence.

The snapshot-free checkpoint path stores component payloads by reference
(no ``copy.deepcopy``).  These tests assert that for every component type in
the library, store -> mutate -> restore round-trips identically under both
semantics -- the legacy deep-copy path (forced by clearing the
``snapshot_copy_free`` flag on the instance) and the fast-copy path --
including nested checkpoint stacks, and that the engine's checkpoint hot
path performs zero ``copy.deepcopy`` calls.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ahb.master import TrafficMaster
from repro.ahb.signals import HBurst
from repro.ahb.slave import DefaultSlave, FifoPeripheralSlave, MemorySlave
from repro.ahb.transaction import BusTransaction
from repro.core import CoEmulationConfig, OperatingMode, OptimisticCoEmulation
from repro.core.prediction import LaggerPredictor
from repro.sim.checkpoint import CheckpointManager, StateCostModel
from repro.sim.kernel import CycleKernel
from repro.workloads import als_streaming_soc

ZERO_COST = StateCostModel(0.0, 0.0)

BASE = 0x1000_0000


def write_traffic(master_id: int, n: int, seed: int):
    import random

    rng = random.Random(seed)
    txns = []
    addr = BASE
    for _ in range(n):
        burst = rng.choice([HBurst.SINGLE, HBurst.INCR4, HBurst.INCR8, HBurst.WRAP4])
        beats = burst.beats or 1
        txns.append(
            BusTransaction(
                master_id=master_id,
                address=addr,
                write=True,
                hburst=burst,
                data=[rng.randrange(1 << 32) for _ in range(beats)],
            )
        )
        addr += 4 * beats
    return txns


def build_system(seed: int):
    """A monolithic kernel-driven bus exercising every component type."""
    from repro.ahb.bus import AhbBus

    bus = AhbBus(name="prop_bus")
    bus.add_master(TrafficMaster("m0", 0, transactions=write_traffic(0, 6, seed)))
    bus.add_master(TrafficMaster("m1", 1, transactions=write_traffic(1, 6, seed + 1)))
    bus.add_slave(MemorySlave("mem", 0, BASE, 0x4000), BASE, 0x4000)
    bus.add_slave(FifoPeripheralSlave("fifo", 1, depth=4, initial_fill=4), 0x2000_0000, 0x1000)
    bus.finalize()
    kernel = CycleKernel("prop")
    kernel.add_component(bus)
    return bus, kernel


def force_legacy(component):
    """Force the legacy deep-copy semantics on one component instance."""
    try:
        component.snapshot_copy_free = False
    except AttributeError:
        # properties (e.g. ComponentGroup) cannot be overridden per instance
        pytest.skip("component derives its protocol flag")
    return component


@given(warmup=st.integers(5, 60), extra=st.integers(1, 60), seed=st.integers(0, 999))
@settings(max_examples=25, deadline=None)
def test_fast_copy_and_deepcopy_semantics_round_trip_identically(warmup, extra, seed):
    """Running the same workload through a fast-copy and a forced-deepcopy
    manager must produce byte-identical restored states."""
    results = []
    for legacy in (False, True):
        bus, kernel = build_system(seed)
        if legacy:
            force_legacy(bus)
        manager = CheckpointManager([bus], cost_model=ZERO_COST)
        kernel.run(warmup)
        reference = copy.deepcopy(bus.snapshot_state())
        manager.store(cycle=warmup)
        kernel.run(extra)
        manager.restore()
        restored = bus.snapshot_state()
        assert _states_equal(restored, reference), (
            f"restore mismatch (legacy={legacy})"
        )
        results.append(restored)
    assert _states_equal(results[0], results[1])


@given(
    depths=st.lists(st.integers(1, 25), min_size=2, max_size=4),
    seed=st.integers(0, 999),
)
@settings(max_examples=15, deadline=None)
def test_nested_checkpoint_stack_restores_in_lifo_order(depths, seed):
    bus, kernel = build_system(seed)
    manager = CheckpointManager([bus], cost_model=ZERO_COST)
    references = []
    cycle = 0
    for extra in depths:
        kernel.run(extra)
        cycle += extra
        references.append(copy.deepcopy(bus.snapshot_state()))
        manager.store(cycle=cycle)
    kernel.run(7)
    while references:
        manager.restore()
        assert _states_equal(bus.snapshot_state(), references.pop())


def test_every_component_type_round_trips_under_both_semantics():
    """Explicit (non-hypothesis) sweep over the individual component types."""
    components = {
        "master": lambda: TrafficMaster("m", 0, transactions=write_traffic(0, 4, 3)),
        "memory": lambda: MemorySlave("mem", 0, BASE, 0x1000),
        "fifo": lambda: FifoPeripheralSlave("fifo", 1, depth=4, initial_fill=2),
        "default_slave": lambda: DefaultSlave(),
        "predictor": lambda: LaggerPredictor("pred", remote_master_ids=[0, 1]),
    }
    mutators = {
        "master": lambda c: (
            c.drive_hbusreq(0),
            c.drive_address_phase(0, granted=True),
        ),
        "memory": lambda c: c.write_word(BASE + 8, 0xDEAD_BEEF),
        "fifo": lambda c: c.evaluate(0),
        "default_slave": lambda c: setattr(c, "_in_second_cycle", True),
        "predictor": lambda c: c.observe(
            __import__("repro.ahb.half_bus", fromlist=["BoundaryDrive"]).BoundaryDrive(
                cycle=0, requests={0: True}
            ),
            None,
        ),
    }
    for name, factory in components.items():
        for legacy in (False, True):
            component = factory()
            if legacy:
                component.snapshot_copy_free = False
            manager = CheckpointManager([component], cost_model=ZERO_COST)
            reference = copy.deepcopy(component.snapshot_state())
            manager.store(cycle=0)
            mutators[name](component)
            manager.restore()
            assert _states_equal(component.snapshot_state(), reference), (
                f"{name} (legacy={legacy})"
            )


def test_engine_checkpoint_path_never_calls_deepcopy(monkeypatch):
    """The acceptance criterion: zero ``copy.deepcopy`` anywhere in an
    optimistic engine run (store and restore both exercised)."""

    def boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("copy.deepcopy reached the engine hot path")

    sim_hbm, acc_hbm, _ = als_streaming_soc(n_bursts=10).build_split()
    config = CoEmulationConfig(
        mode=OperatingMode.ALS, total_cycles=400, forced_accuracy=0.8
    )
    engine = OptimisticCoEmulation(sim_hbm, acc_hbm, config)
    monkeypatch.setattr(copy, "deepcopy", boom)
    result = engine.run()
    assert result.committed_cycles == 400
    assert result.transitions["rollbacks"] > 0  # restores really happened


def _states_equal(a, b) -> bool:
    """Structural comparison that treats numpy arrays elementwise."""
    import numpy as np

    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_states_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_states_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(a, b))
    return a == b
