"""Property-based end-to-end test: random workloads, random scheme parameters,
functional equivalence must always hold.

This is the strongest invariant of the whole reproduction: no combination of
operating mode, LOB depth and injected prediction accuracy may change the
committed bus traffic relative to the monolithic reference bus.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CoEmulationConfig, OperatingMode, OptimisticCoEmulation
from repro.sim.component import Domain
from repro.sim.kernel import CycleKernel
from repro.workloads import AddressWindow, MasterSpec, SlaveSpec, SocSpec
from repro.workloads.generators import TrafficProfile, generate_traffic
from repro.workloads.trace import traces_equivalent


SIM_WINDOW = AddressWindow(base=0x1000_0000, size=0x1000)
ACC_WINDOW = AddressWindow(base=0x0000_0000, size=0x1000)


def make_spec(seed: int, acc_writes_to_sim: bool) -> SocSpec:
    """A two-master SoC with randomised traffic.

    Master 0 lives in the accelerator and (when ``acc_writes_to_sim``) streams
    writes into the simulator memory -- the ALS-friendly direction.  Master 1
    lives in the simulator and works on the simulator-local memory.
    """

    def acc_traffic():
        return generate_traffic(
            TrafficProfile(
                master_id=0,
                n_transactions=6,
                write_fraction=1.0 if acc_writes_to_sim else 0.5,
                write_windows=(SIM_WINDOW if acc_writes_to_sim else ACC_WINDOW,),
                read_windows=(ACC_WINDOW,),
                seed=seed,
            )
        )

    def sim_traffic():
        return generate_traffic(
            TrafficProfile(
                master_id=1,
                n_transactions=6,
                write_fraction=0.5,
                write_windows=(SIM_WINDOW,),
                read_windows=(SIM_WINDOW,),
                seed=seed + 1,
                issue_gap=3,
            )
        )

    return SocSpec(
        name=f"random_{seed}",
        masters=[
            MasterSpec(master_id=0, name="acc_m", domain=Domain.ACCELERATOR, transactions=acc_traffic),
            MasterSpec(master_id=1, name="sim_m", domain=Domain.SIMULATOR, transactions=sim_traffic),
        ],
        slaves=[
            SlaveSpec(
                slave_id=0,
                name="acc_mem",
                domain=Domain.ACCELERATOR,
                base=ACC_WINDOW.base,
                size=ACC_WINDOW.size,
            ),
            SlaveSpec(
                slave_id=1,
                name="sim_mem",
                domain=Domain.SIMULATOR,
                base=SIM_WINDOW.base,
                size=SIM_WINDOW.size,
            ),
        ],
    )


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    mode=st.sampled_from([OperatingMode.ALS, OperatingMode.SLA, OperatingMode.AUTO]),
    lob_depth=st.sampled_from([2, 8, 64]),
    accuracy=st.one_of(st.none(), st.floats(min_value=0.3, max_value=0.99)),
    acc_writes_to_sim=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_random_workloads_preserve_functional_equivalence(
    seed, mode, lob_depth, accuracy, acc_writes_to_sim
):
    cycles = 180
    reference_spec = make_spec(seed, acc_writes_to_sim)
    bus, _ = reference_spec.build_reference()
    kernel = CycleKernel("reference")
    kernel.add_component(bus)
    kernel.run(cycles)
    assert bus.monitor.ok, [str(v) for v in bus.monitor.violations]

    split_spec = make_spec(seed, acc_writes_to_sim)
    sim_hbm, acc_hbm, _ = split_spec.build_split()
    config = CoEmulationConfig(
        mode=mode,
        total_cycles=cycles,
        lob_depth=lob_depth,
        forced_accuracy=accuracy,
        forced_accuracy_seed=seed,
    )
    result = OptimisticCoEmulation(sim_hbm, acc_hbm, config).run()
    assert result.monitors_ok
    assert traces_equivalent(bus.recorder, [sim_hbm.recorder, acc_hbm.recorder]) is None
