"""Property-based tests for the imperfect-channel layer.

Three invariants, each over randomised fault configurations:

1. **Schedule determinism** -- the injected fault schedule is a pure function
   of the :class:`ChannelFaultConfig` seed and the stream coordinates.
2. **Run determinism** -- a faulty co-emulation run is bit-for-bit
   reproducible (identical record digest), and its committed beats are
   identical to the ideal-channel run of the same workload.
3. **Exactly-once delivery** -- the selective-repeat stream delivers every
   payload exactly once and in order for arbitrary fault mixes, as long as no
   message exceeds the give-up threshold.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.driver import ChannelEndpoint
from repro.channel.faults import (
    ChannelFaultConfig,
    ChannelFaultInjector,
    FaultyChannelEndpoint,
)
from repro.channel.phy import ChannelDirection
from repro.channel.reliability import ReliableStream
from repro.orchestration.request import RunRequest, execute_request


def fault_configs(max_loss: float = 0.25) -> st.SearchStrategy[ChannelFaultConfig]:
    """Random but survivable fault mixes.

    ``max_attempts`` is held high relative to the fault rates so that the
    probability of a give-up over a short stream is negligible -- the
    exactly-once property is only promised below the give-up threshold.
    """
    return st.builds(
        ChannelFaultConfig,
        loss_rate=st.floats(min_value=0.0, max_value=max_loss),
        duplicate_rate=st.floats(min_value=0.0, max_value=0.3),
        corruption_rate=st.floats(min_value=0.0, max_value=0.15),
        reorder_rate=st.floats(min_value=0.0, max_value=0.3),
        reorder_depth=st.integers(min_value=1, max_value=5),
        jitter_mean=st.sampled_from([0.0, 0.5e-6]),
        jitter_spread=st.sampled_from([0.0, 1.0e-6]),
        window=st.sampled_from([1, 4, 16]),
        max_attempts=st.just(64),
        seed=st.integers(min_value=0, max_value=2**31),
    )


@given(config=fault_configs(), context=st.text(min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_same_seed_produces_identical_fault_schedule(config, context):
    def schedule():
        injector = ChannelFaultInjector(config, config.derive_rng(context))
        return [vars(injector.wire_fate()).copy() for _ in range(200)]

    assert schedule() == schedule()


@given(
    config=fault_configs(),
    n_payloads=st.integers(min_value=0, max_value=60),
    data_seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_stream_delivers_exactly_once_in_order(config, n_payloads, data_seed):
    import random

    rng = random.Random(data_seed)
    payloads = [
        [rng.randrange(2**32) for _ in range(rng.randrange(1, 5))]
        for _ in range(n_payloads)
    ]
    endpoint = ChannelEndpoint(keep_log=True)
    injector = ChannelFaultInjector(config, config.derive_rng("property"))
    stream = ReliableStream(
        FaultyChannelEndpoint(endpoint, injector), ChannelDirection.SIM_TO_ACC, config
    )
    assert stream.transfer(payloads) == payloads
    assert stream.report.delivered == n_payloads


@given(
    fault_seed=st.integers(min_value=0, max_value=2**31),
    loss=st.floats(min_value=0.0, max_value=0.1),
    mode=st.sampled_from(["conservative", "als"]),
)
@settings(max_examples=10, deadline=None)
def test_faulty_run_digest_is_deterministic_and_beats_match_ideal(
    fault_seed, loss, mode
):
    faults = ChannelFaultConfig(
        loss_rate=loss, duplicate_rate=0.05, reorder_rate=0.05,
        max_attempts=30, seed=fault_seed,
    )
    request = RunRequest(
        scenario="mixed", mode=mode, cycles=80, channel_faults=faults.as_dict()
    )
    first = execute_request(request)
    second = execute_request(request)
    assert first.digest == second.digest
    ideal = execute_request(RunRequest(scenario="mixed", mode=mode, cycles=80))
    assert first.beat_digest == ideal.beat_digest
