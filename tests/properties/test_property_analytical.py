"""Property-based tests for the analytical performance model."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.analytical import (
    AnalyticalConfig,
    conventional_performance,
    estimate_performance,
    expected_committed_per_transition,
    expected_rollforth_per_transition,
    failure_probability,
)
from repro.core.modes import OperatingMode


accuracies = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
lob_depths = st.integers(min_value=1, max_value=512)
modes = st.sampled_from([OperatingMode.ALS, OperatingMode.SLA])
sim_speeds = st.floats(min_value=1e4, max_value=1e7)


@given(accuracy=accuracies, depth=lob_depths)
@settings(max_examples=300)
def test_expected_committed_is_within_bounds(accuracy, depth):
    committed = expected_committed_per_transition(accuracy, depth)
    assert 0.0 < committed <= depth + 1e-9
    rollforth = expected_rollforth_per_transition(accuracy, depth)
    assert -1e-9 <= rollforth <= committed + 1e-9
    assert 0.0 <= failure_probability(accuracy, depth) <= 1.0


@given(accuracy=accuracies, depth=lob_depths)
@settings(max_examples=200)
def test_committed_is_monotone_in_accuracy(accuracy, depth):
    assume(accuracy < 0.999)
    lower = expected_committed_per_transition(accuracy, depth)
    higher = expected_committed_per_transition(min(1.0, accuracy + 0.001), depth)
    assert higher >= lower - 1e-9


@given(accuracy=accuracies, depth=lob_depths, mode=modes, sim_speed=sim_speeds)
@settings(max_examples=300)
def test_estimate_components_are_nonnegative_and_consistent(accuracy, depth, mode, sim_speed):
    config = AnalyticalConfig(
        mode=mode,
        prediction_accuracy=accuracy,
        lob_depth=depth,
        simulator_cycles_per_second=sim_speed,
    )
    estimate = estimate_performance(config)
    for value in (
        estimate.t_sim,
        estimate.t_acc,
        estimate.t_store,
        estimate.t_restore,
        estimate.t_channel,
    ):
        assert value >= 0.0
    assert estimate.performance > 0.0
    assert estimate.total_per_cycle * estimate.performance == pytest_approx_one()
    # the leader never executes fewer cycles than it commits
    assert estimate.leader_cycles_per_transition >= estimate.committed_per_transition - 1e-9


def pytest_approx_one():
    import pytest

    return pytest.approx(1.0, rel=1e-9)


@given(accuracy=accuracies, depth=lob_depths, mode=modes)
@settings(max_examples=200)
def test_performance_never_exceeds_perfect_prediction_case(accuracy, depth, mode):
    config = AnalyticalConfig(mode=mode, prediction_accuracy=accuracy, lob_depth=depth)
    perfect = estimate_performance(config.with_accuracy(1.0))
    actual = estimate_performance(config)
    assert actual.performance <= perfect.performance + 1e-6


@given(accuracy=accuracies, mode=modes)
@settings(max_examples=200)
def test_deeper_lob_always_wins_at_perfect_accuracy(accuracy, mode):
    """At p=1 there are no rollbacks, so a deeper LOB can only help (more
    startup overhead amortised per flush)."""
    shallow = estimate_performance(
        AnalyticalConfig(mode=mode, prediction_accuracy=1.0, lob_depth=8)
    )
    deep = estimate_performance(
        AnalyticalConfig(mode=mode, prediction_accuracy=1.0, lob_depth=64)
    )
    assert deep.performance >= shallow.performance


@given(sim_speed=sim_speeds)
@settings(max_examples=100)
def test_conventional_performance_bounded_by_channel_and_simulator(sim_speed):
    config = AnalyticalConfig(simulator_cycles_per_second=sim_speed)
    perf = conventional_performance(config)
    # can never beat the pure channel bound nor the simulator itself
    channel_bound = 1.0 / (2 * config.channel.startup_overhead)
    assert perf < channel_bound
    assert perf < sim_speed


@given(
    accuracy=st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
    depth=lob_depths,
)
@settings(max_examples=100)
def test_als_ratio_exceeds_sla_ratio_for_equal_settings(accuracy, depth):
    """The accelerator is the cheaper engine to waste on speculative work, so
    whenever predictions can fail (accuracy < 1) ALS never does worse than
    SLA for identical parameters.

    At exactly perfect accuracy the comparison is excluded: there is no
    speculative waste, the two modes converge, and SLA's marginally cheaper
    flush payload (sim-to-acc words are faster than acc-to-sim words) can
    nose ahead of ALS's cheaper state store by a fraction of a percent for
    very deep buffers.
    """
    als = estimate_performance(
        AnalyticalConfig(mode=OperatingMode.ALS, prediction_accuracy=accuracy, lob_depth=depth)
    )
    sla = estimate_performance(
        AnalyticalConfig(mode=OperatingMode.SLA, prediction_accuracy=accuracy, lob_depth=depth)
    )
    assert als.performance >= sla.performance * 0.999
