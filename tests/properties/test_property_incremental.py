"""Incremental (dirty-set) checkpointing equivalence.

The checkpoint-window protocol journals component mutations so ``rb_store``
is O(1) and rollback is O(state touched).  These properties prove the
incremental manager is *state-identical* to the legacy full-snapshot manager
across random mutation / store / restore / discard sequences, at the
component level and through a full rollback-heavy engine run.
"""

from __future__ import annotations

import copy
import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ahb.master import TrafficMaster
from repro.ahb.signals import HBurst
from repro.ahb.slave import FifoPeripheralSlave, MemorySlave
from repro.ahb.transaction import BusTransaction
from repro.core import CoEmulationConfig, OperatingMode, OptimisticCoEmulation
from repro.sim.checkpoint import CheckpointManager, StateCostModel
from repro.sim.kernel import CycleKernel
from repro.workloads import als_streaming_soc

ZERO_COST = StateCostModel(0.0, 0.0)
BASE = 0x1000_0000


def write_traffic(master_id: int, n: int, seed: int):
    import random

    rng = random.Random(seed)
    txns = []
    addr = BASE
    for _ in range(n):
        burst = rng.choice([HBurst.SINGLE, HBurst.INCR4, HBurst.INCR8, HBurst.WRAP4])
        beats = burst.beats or 1
        txns.append(
            BusTransaction(
                master_id=master_id,
                address=addr,
                write=True,
                hburst=burst,
                data=[rng.randrange(1 << 32) for _ in range(beats)],
            )
        )
        addr += 4 * beats
    return txns


def build_system(seed: int):
    from repro.ahb.bus import AhbBus

    bus = AhbBus(name="inc_prop_bus")
    bus.add_master(TrafficMaster("m0", 0, transactions=write_traffic(0, 8, seed)))
    bus.add_master(TrafficMaster("m1", 1, transactions=write_traffic(1, 8, seed + 1)))
    bus.add_slave(MemorySlave("mem", 0, BASE, 0x4000), BASE, 0x4000)
    bus.add_slave(FifoPeripheralSlave("fifo", 1, depth=4, initial_fill=4), 0x2000_0000, 0x1000)
    bus.finalize()
    kernel = CycleKernel("inc_prop")
    kernel.add_component(bus)
    return bus, kernel


#: One random step of the driver: run some cycles, then store / restore /
#: discard when the current checkpoint depth allows it.
_OPS = st.sampled_from(["run", "store", "restore", "discard"])


@given(
    ops=st.lists(st.tuples(_OPS, st.integers(1, 20)), min_size=4, max_size=16),
    seed=st.integers(0, 999),
)
@settings(max_examples=30, deadline=None)
def test_incremental_manager_is_state_identical_to_full_snapshots(ops, seed):
    """Interleaved mutation / store / restore / discard sequences leave the
    incrementally-checkpointed system in exactly the state the full-snapshot
    system reaches."""
    systems = []
    for incremental in (True, False):
        bus, kernel = build_system(seed)
        manager = CheckpointManager([bus], cost_model=ZERO_COST, incremental=incremental)
        assert manager.incremental is incremental
        systems.append((bus, kernel, manager))

    cycle = 0
    for op, span in ops:
        if op == "run":
            cycle += span
            for _, kernel, _ in systems:
                kernel.run(span)
        elif op == "store":
            for _, _, manager in systems:
                manager.store(cycle=cycle)
        elif op == "restore":
            if not systems[0][2].has_checkpoint:
                continue
            for _, _, manager in systems:
                manager.restore()
        elif op == "discard":
            if not systems[0][2].has_checkpoint:
                continue
            for _, _, manager in systems:
                manager.discard()
        states = [copy.deepcopy(bus.snapshot_state()) for bus, _, _ in systems]
        assert _states_equal(states[0], states[1]), f"diverged after {op}"
    # Identical stores/restores were accounted on both sides.
    inc_stats, full_stats = systems[0][2].stats, systems[1][2].stats
    assert inc_stats.stores == full_stats.stores
    assert inc_stats.restores == full_stats.restores
    assert inc_stats.variables_stored == full_stats.variables_stored
    assert inc_stats.store_time == full_stats.store_time
    # Depth-0 stores open windows; nested stores correctly fall back to full
    # snapshots, so 1 <= incremental <= total whenever anything was stored.
    if inc_stats.stores:
        assert 1 <= inc_stats.incremental_stores <= inc_stats.stores
    assert full_stats.incremental_stores == 0


@given(seed=st.integers(0, 99), accuracy=st.sampled_from([0.7, 0.85, 0.95]))
@settings(max_examples=8, deadline=None)
def test_rollback_heavy_engine_run_is_bit_identical_under_both_schemes(seed, accuracy):
    """A full prediction-and-rollback engine run (stores, restores and
    discards on every transition) produces bit-identical results whether the
    leader checkpoints incrementally (default) or with full snapshots."""
    digests = []
    for incremental in (True, False):
        sim_hbm, acc_hbm, _ = als_streaming_soc(n_bursts=12).build_split()
        config = CoEmulationConfig(
            mode=OperatingMode.ALS,
            total_cycles=400,
            forced_accuracy=accuracy,
            forced_accuracy_seed=seed,
        )
        engine = OptimisticCoEmulation(sim_hbm, acc_hbm, config)
        for host in engine.hosts.values():
            host.checkpoints.incremental = incremental
        result = engine.run()
        assert result.transitions["rollbacks"] > 0  # restores really happened
        payload = repr(
            (
                result.sim_beat_keys,
                result.acc_beat_keys,
                result.transitions,
                result.prediction,
                {k: repr(v) for k, v in result.per_cycle_times.items()},
                repr(result.total_modelled_time),
                result.channel["accesses"],
                result.wasted_leader_cycles,
            )
        )
        digests.append(hashlib.sha256(payload.encode()).hexdigest())
    assert digests[0] == digests[1]


def test_memory_dirty_journal_survives_interleaved_full_restores():
    """A nested (full-snapshot) checkpoint taken while an incremental window
    is open must not corrupt the window: rewinding afterwards lands exactly
    on the window-open state."""
    memory = MemorySlave("mem", 0, BASE, 0x100)
    memory.load(BASE, [0x11, 0x22, 0x33])
    manager = CheckpointManager([memory], cost_model=ZERO_COST, incremental=True)
    window_open = copy.deepcopy(memory.snapshot_state())
    manager.store(cycle=0)  # incremental window
    memory.write_word(BASE, 0xAAAA)
    manager.store(cycle=1)  # nested store -> full snapshot path
    memory.write_word(BASE + 4, 0xBBBB)
    manager.restore()  # full restore back to cycle-1 state
    assert memory.read_word(BASE) == 0xAAAA
    assert memory.read_word(BASE + 4) == 0x22
    memory.write_word(BASE + 8, 0xCCCC)
    manager.restore()  # rewind the incremental window
    assert _states_equal(memory.snapshot_state(), window_open)


def test_variable_count_is_cached_and_invalidatable():
    memory = MemorySlave("mem", 0, BASE, 0x100)
    manager = CheckpointManager([memory], cost_model=ZERO_COST)
    first = manager.variable_count()
    assert first == memory.rollback_variable_count()
    calls = {"n": 0}
    original = memory.rollback_variable_count

    def counting():
        calls["n"] += 1
        return original()

    memory.rollback_variable_count = counting
    assert manager.variable_count() == first  # cache hit, no re-sum
    assert calls["n"] == 0
    manager.invalidate_variable_count()
    assert manager.variable_count() == first
    assert calls["n"] == 1


def test_budget_still_wins_over_actual_counts():
    memory = MemorySlave("mem", 0, BASE, 0x100)
    manager = CheckpointManager(
        [memory], cost_model=ZERO_COST, rollback_variable_budget=1000
    )
    assert manager.variable_count() == 1000


def _states_equal(a, b) -> bool:
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_states_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_states_equal(x, y) for x, y in zip(a, b))
    return a == b
