"""Property-based equivalence: trace-replay engines vs their scalar twins.

The periodic trace-replay engines (``conventional_trace`` / ``als_trace``)
fast-forward verified steady-state periods through a cycle-pattern cache,
but claim the same contract as the batch kernels: *bit-identity* with the
scalar engines on every digest field -- beat streams, transition and
prediction statistics, per-cycle modelled times down to the last float ulp,
channel counters.  These properties throw randomised workloads (periodic
streaming and arbitrary traffic alike), LOB depths, topology sizes and
channel-fault schedules at that claim, and pin the refusal envelope: replay
must never silently engage outside the configurations it was verified for.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.faults import ChannelFaultConfig
from repro.core import CoEmulationConfig, OperatingMode
from repro.core.engine import create_engine
from repro.workloads.catalog import accelerator_farm_4x_soc, sim_only_baseline_soc
from repro.workloads.soc import als_streaming_soc

from .test_property_equivalence import make_spec


def full_digest(result) -> str:
    """Every field the golden digests hash, rendered bit-exactly."""
    return repr(
        (
            sorted(result.domain_beat_keys.items()),
            result.committed_cycles,
            result.transitions,
            result.prediction,
            {k: repr(v) for k, v in result.per_cycle_times.items()},
            repr(result.total_modelled_time),
            result.channel.get("accesses"),
            result.channel.get("words"),
            repr(result.channel.get("total_time")),
            result.wasted_leader_cycles,
            result.monitors_ok,
        )
    )


def run_spec(spec, trace_replay, **config_kwargs):
    config = CoEmulationConfig(trace_replay=trace_replay, **config_kwargs)
    config, partition = spec.prepare_run(config)
    return create_engine(config, partition=partition).run()


def assert_trace_bit_identical(spec_factory, **config_kwargs):
    scalar = run_spec(spec_factory(), False, **config_kwargs)
    traced = run_spec(spec_factory(), True, **config_kwargs)
    assert full_digest(traced) == full_digest(scalar)
    return traced


@given(
    n_bursts=st.integers(min_value=1, max_value=60),
    issue_gap=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
    lob_depth=st.sampled_from([2, 8, 64]),
    total_cycles=st.integers(min_value=50, max_value=400),
)
@settings(max_examples=20, deadline=None)
def test_trace_replay_is_bit_identical_on_random_periodic_streams(
    n_bursts, issue_gap, seed, lob_depth, total_cycles
):
    """The workload family replay targets: steady streaming bursts whose
    period depends on burst count, issue gap and seed."""
    assert_trace_bit_identical(
        lambda: als_streaming_soc(n_bursts=n_bursts, issue_gap=issue_gap, seed=seed),
        mode=OperatingMode.CONSERVATIVE,
        total_cycles=total_cycles,
        lob_depth=lob_depth,
    )


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    mode=st.sampled_from(
        [
            OperatingMode.CONSERVATIVE,
            OperatingMode.ALS,
            OperatingMode.SLA,
            OperatingMode.AUTO,
        ]
    ),
    lob_depth=st.sampled_from([2, 8, 64]),
    accuracy=st.one_of(st.none(), st.floats(min_value=0.3, max_value=0.99)),
    acc_writes_to_sim=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_trace_replay_is_bit_identical_on_random_workloads(
    seed, mode, lob_depth, accuracy, acc_writes_to_sim
):
    """Arbitrary (not necessarily periodic) traffic: replay either engages
    correctly or refuses -- the digest must not notice either way."""
    assert_trace_bit_identical(
        lambda: make_spec(seed, acc_writes_to_sim),
        mode=mode,
        total_cycles=180,
        lob_depth=lob_depth,
        forced_accuracy=accuracy,
        forced_accuracy_seed=seed,
    )


@given(
    n_domains=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
    mode=st.sampled_from([OperatingMode.CONSERVATIVE, OperatingMode.ALS]),
)
@settings(max_examples=15, deadline=None)
def test_trace_replay_refuses_non_canonical_topologies(n_domains, seed, mode):
    """Replay is only verified for the canonical two-domain layout; any other
    topology must disable it with the structured reason -- and stay
    bit-identical scalar."""
    if n_domains == 1:
        factory = lambda: sim_only_baseline_soc(seed=seed)
    else:
        factory = lambda: accelerator_farm_4x_soc(
            n_accelerators=n_domains - 1, n_bursts=4, seed=seed
        )
    traced = assert_trace_bit_identical(factory, mode=mode, total_cycles=200)
    if n_domains != 2:
        assert not traced.trace_replay["enabled"]
        # ALS engines refuse for predictor training before probing topology.
        reason = "predictor_training" if mode is OperatingMode.ALS else "topology"
        assert traced.trace_replay["bailouts"] == {reason: 1}


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss_rate=st.floats(min_value=0.0, max_value=0.2),
    duplicate_rate=st.floats(min_value=0.0, max_value=0.1),
    reorder_rate=st.floats(min_value=0.0, max_value=0.1),
    mode=st.sampled_from([OperatingMode.CONSERVATIVE, OperatingMode.ALS]),
    acc_writes_to_sim=st.booleans(),
)
@settings(max_examples=10, deadline=None)
def test_trace_replay_refuses_faulty_channels(
    seed, loss_rate, duplicate_rate, reorder_rate, mode, acc_writes_to_sim
):
    """Fault injection perturbs per-cycle channel timing, which the per-period
    closed-form bookkeeping cannot reproduce -- replay must sit out entirely
    rather than approximate."""

    def factory():
        spec = make_spec(seed, acc_writes_to_sim)
        spec.channel_faults = ChannelFaultConfig(
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
            reorder_rate=reorder_rate,
            jitter_mean=0.3e-6,
            jitter_spread=0.5e-6,
            seed=seed + 13,
        )
        return spec

    traced = assert_trace_bit_identical(factory, mode=mode, total_cycles=180)
    assert not traced.trace_replay["enabled"]
    # ALS engines refuse for predictor training before probing the channel.
    reason = "predictor_training" if mode is OperatingMode.ALS else "channel_faults"
    assert traced.trace_replay["bailouts"] == {reason: 1}
