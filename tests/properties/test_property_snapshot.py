"""Property-based kill-resume: snapshot anywhere, resume, bytes identical.

Hypothesis drives random (scenario, mode, engine, LOB depth, accuracy,
cycle count, interruption point) tuples through the durable-snapshot path:
run to a random safe point, snapshot, throw the engine away, restore from
the file and finish.  The completed record -- canonical JSON, digest and
per-cycle float reprs included -- must equal an uninterrupted run's exactly.

This is the durability analogue of the functional-equivalence property
suite: whatever state the engines carry (LOB contents, rollback ledgers,
fault RNG streams, trace caches, multi-domain kernels), a snapshot at a safe
point captures all of it or the bytes would differ.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coemulation import CoEmulationEngineBase
from repro.core.snapshot import AbortRun, write_snapshot
from repro.orchestration.request import (
    RunRequest,
    build_request_engine,
    canonical_json,
    record_from_result,
)

#: Workload x engine corners, spanning single/multi-domain topologies, ideal
#: and faulty channels, and the scalar/batch/trace engine variants.
CORNERS = [
    ("single_master", "conservative", None),
    ("als_streaming", "als", None),
    ("mixed", "als", None),
    ("dual_accelerator_pipeline", "als", None),
    ("lossy_streaming", "als", None),
    ("degraded_pipeline", "conservative", None),
    ("mixed", "als", "als_batch"),
    ("single_master", "conservative", "conventional_batch"),
    ("sparse_telemetry", "als", "als_trace"),
]


class _AbortAt:
    def __init__(self, cycle: int) -> None:
        self.cycle = cycle

    def __call__(self, engine) -> None:
        if engine.ledger.committed_cycles >= self.cycle:
            raise AbortRun("property interrupt")


def _finish(request, engine):
    record = record_from_result(request, request.engine_name(), engine.run())
    return canonical_json(record.as_dict())


@settings(max_examples=25, deadline=None)
@given(
    corner=st.sampled_from(CORNERS),
    cycles=st.integers(min_value=40, max_value=220),
    cut=st.floats(min_value=0.05, max_value=0.95),
    lob_depth=st.sampled_from([8, 64]),
    accuracy=st.sampled_from([None, 1.0, 0.9, 0.6]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_snapshot_resume_bit_identical(
    tmp_path_factory, corner, cycles, cut, lob_depth, accuracy, seed
):
    scenario, mode, engine_name = corner
    request = RunRequest(
        scenario=scenario,
        mode=mode,
        cycles=cycles,
        lob_depth=lob_depth,
        accuracy=accuracy if mode == "als" else None,
        engine=engine_name,
        seed=seed,
        config_overrides={"trace_replay": True}
        if engine_name and engine_name.endswith("_trace")
        else {},
    )
    baseline = _finish(request, build_request_engine(request))

    engine = build_request_engine(request)
    assert isinstance(engine, CoEmulationEngineBase)
    engine.run_hook = _AbortAt(max(1, int(cycles * cut)))
    try:
        engine.run()
    except AbortRun:
        pass
    else:
        # The interruption point fell beyond the run (sparse safe points or
        # a cut close to 1.0): an uninterrupted run is trivially identical,
        # nothing durable to exercise.
        return
    engine.run_hook = None

    path = tmp_path_factory.mktemp("snap") / "run.snap"
    write_snapshot(path, engine, request_id=request.request_id)
    del engine  # the killed process's memory is gone

    resumed = CoEmulationEngineBase.restore(path)
    assert _finish(request, resumed) == baseline
