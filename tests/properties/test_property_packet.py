"""Property-based tests for the channel packetizer (encode/decode inverse)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ahb.signals import AddressPhase, DataPhaseResult, HBurst, HResp, HSize, HTrans
from repro.channel.packet import BoundaryPacketizer


MASTER_IDS = [0, 1, 2, 3]
IRQS = ["irq0", "irq1", "irq2"]


@st.composite
def address_phases(draw):
    size = draw(st.sampled_from([HSize.BYTE, HSize.HALFWORD, HSize.WORD]))
    word_index = draw(st.integers(min_value=0, max_value=(1 << 30) - 1))
    return AddressPhase(
        master_id=draw(st.sampled_from(MASTER_IDS)),
        haddr=word_index * size.bytes,
        htrans=draw(st.sampled_from(list(HTrans))),
        hwrite=draw(st.booleans()),
        hsize=size,
        hburst=draw(st.sampled_from(list(HBurst))),
        hprot=draw(st.integers(0, 15)),
    )


@st.composite
def responses(draw):
    return DataPhaseResult(
        hready=draw(st.booleans()),
        hresp=draw(st.sampled_from(list(HResp))),
        hrdata=draw(st.one_of(st.none(), st.integers(0, 0xFFFFFFFF))),
    )


request_maps = st.dictionaries(st.sampled_from(MASTER_IDS), st.booleans())
interrupt_maps = st.dictionaries(st.sampled_from(IRQS), st.booleans())


@given(
    requests=request_maps,
    phase=st.one_of(st.none(), address_phases()),
    hwdata=st.one_of(st.none(), st.integers(0, 0xFFFFFFFF)),
    response=st.one_of(st.none(), responses()),
    interrupts=interrupt_maps,
)
@settings(max_examples=300)
def test_encode_decode_is_the_identity(requests, phase, hwdata, response, interrupts):
    packetizer = BoundaryPacketizer(MASTER_IDS, IRQS)
    words = packetizer.encode(
        requests=requests,
        address_phase=phase,
        hwdata=hwdata,
        response=response,
        interrupts=interrupts,
    )
    decoded = packetizer.decode(words)
    # requests: every registered master decodes to its encoded value (missing -> False)
    for master_id in MASTER_IDS:
        assert decoded.requests[master_id] == requests.get(master_id, False)
    for name in IRQS:
        assert decoded.interrupts[name] == interrupts.get(name, False)
    assert decoded.address_phase == phase
    assert decoded.hwdata == hwdata
    assert decoded.response == response


@given(
    requests=request_maps,
    phase=st.one_of(st.none(), address_phases()),
    hwdata=st.one_of(st.none(), st.integers(0, 0xFFFFFFFF)),
    response=st.one_of(st.none(), responses()),
)
@settings(max_examples=200)
def test_packet_word_count_is_bounded(requests, phase, hwdata, response):
    """No single cycle record ever needs more than 6 words -- consistent with
    the paper's observation of at most ~5 payload words per cycle."""
    packetizer = BoundaryPacketizer(MASTER_IDS, IRQS)
    words = packetizer.encode(
        requests=requests, address_phase=phase, hwdata=hwdata, response=response
    )
    assert 1 <= len(words) <= 6
    assert all(0 <= word <= 0xFFFFFFFF for word in words)


@given(
    requests=request_maps,
    phase=st.one_of(st.none(), address_phases()),
    hwdata=st.one_of(st.none(), st.integers(0, 0xFFFFFFFF)),
    response=st.one_of(st.none(), responses()),
    interrupts=interrupt_maps,
)
@settings(max_examples=300)
def test_arithmetic_word_count_matches_encoder(requests, phase, hwdata, response, interrupts):
    """The engines charge channel time from ``cycle_word_count`` without
    building the word list; the count must equal ``len(encode(...))``
    exactly, or the modelled channel times would drift from the packets."""
    packetizer = BoundaryPacketizer(MASTER_IDS, IRQS)
    words = packetizer.encode(
        requests=requests,
        address_phase=phase,
        hwdata=hwdata,
        response=response,
        interrupts=interrupts,
    )
    assert packetizer.cycle_word_count(phase, hwdata, response) == len(words)
