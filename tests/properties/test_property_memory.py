"""Property-based tests for the memory slave and the checkpoint machinery."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ahb.slave import MemorySlave
from repro.sim.checkpoint import CheckpointManager, StateCostModel


BASE = 0x4000
SIZE = 0x400  # 256 words

word_values = st.integers(min_value=0, max_value=0xFFFFFFFF)
offsets = st.integers(min_value=0, max_value=SIZE // 4 - 1)


@given(writes=st.lists(st.tuples(offsets, word_values), max_size=64))
@settings(max_examples=150)
def test_memory_reads_return_last_written_value(writes):
    memory = MemorySlave("mem", 0, BASE, SIZE)
    expected = {}
    for offset, value in writes:
        memory.write_word(BASE + 4 * offset, value)
        expected[offset] = value
    for offset, value in expected.items():
        assert memory.read_word(BASE + 4 * offset) == value
    # untouched words stay zero
    untouched = set(range(SIZE // 4)) - set(expected)
    for offset in list(untouched)[:8]:
        assert memory.read_word(BASE + 4 * offset) == 0


@given(
    before=st.lists(st.tuples(offsets, word_values), max_size=32),
    after=st.lists(st.tuples(offsets, word_values), max_size=32),
)
@settings(max_examples=150)
def test_checkpoint_restore_discards_exactly_the_post_checkpoint_writes(before, after):
    memory = MemorySlave("mem", 0, BASE, SIZE)
    for offset, value in before:
        memory.write_word(BASE + 4 * offset, value)
    manager = CheckpointManager([memory], StateCostModel(0.0, 0.0))
    manager.store(cycle=0)
    snapshot_view = {offset: memory.read_word(BASE + 4 * offset) for offset in range(SIZE // 4)}
    for offset, value in after:
        memory.write_word(BASE + 4 * offset, value)
    manager.restore()
    for offset, value in snapshot_view.items():
        assert memory.read_word(BASE + 4 * offset) == value


@given(
    writes=st.lists(st.tuples(offsets, word_values), min_size=1, max_size=32),
    checkpoint_at=st.integers(min_value=0, max_value=31),
)
@settings(max_examples=100)
def test_discarded_checkpoint_never_alters_state(writes, checkpoint_at):
    memory = MemorySlave("mem", 0, BASE, SIZE)
    manager = CheckpointManager([memory], StateCostModel(0.0, 0.0))
    for index, (offset, value) in enumerate(writes):
        if index == min(checkpoint_at, len(writes) - 1):
            manager.store(cycle=index)
        memory.write_word(BASE + 4 * offset, value)
    final = {offset: memory.read_word(BASE + 4 * offset) for offset, _ in writes}
    if manager.has_checkpoint:
        manager.discard()
    for offset, value in final.items():
        assert memory.read_word(BASE + 4 * offset) == value
