"""Property-based equivalence: batch-stepped engines vs their scalar twins.

The batch-stepping kernel (``conventional_batch`` / ``als_batch``) claims
*bit-identity*, not just functional equivalence: every digest field the
golden regression hashes -- beat streams, transition and prediction
statistics, per-cycle modelled times down to the last float ulp, channel
counters -- must match the scalar engines exactly, for any workload, any
scheme parameters, any topology size and any channel fault schedule.  These
properties throw randomised configurations at that claim.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.faults import ChannelFaultConfig
from repro.core import CoEmulationConfig, OperatingMode
from repro.core.engine import create_engine
from repro.workloads.catalog import accelerator_farm_4x_soc, sim_only_baseline_soc

from .test_property_equivalence import make_spec


def full_digest(result) -> str:
    """Every field the golden digests hash, rendered bit-exactly."""
    return repr(
        (
            sorted(result.domain_beat_keys.items()),
            result.committed_cycles,
            result.transitions,
            result.prediction,
            {k: repr(v) for k, v in result.per_cycle_times.items()},
            repr(result.total_modelled_time),
            result.channel.get("accesses"),
            result.channel.get("words"),
            repr(result.channel.get("total_time")),
            result.wasted_leader_cycles,
            result.monitors_ok,
        )
    )


def run_spec(spec, batch_stepping, **config_kwargs):
    config = CoEmulationConfig(batch_stepping=batch_stepping, **config_kwargs)
    config, partition = spec.prepare_run(config)
    return create_engine(config, partition=partition).run()


def assert_batch_bit_identical(spec_factory, **config_kwargs):
    scalar = full_digest(run_spec(spec_factory(), False, **config_kwargs))
    batched = full_digest(run_spec(spec_factory(), True, **config_kwargs))
    assert batched == scalar


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    mode=st.sampled_from(
        [
            OperatingMode.CONSERVATIVE,
            OperatingMode.ALS,
            OperatingMode.SLA,
            OperatingMode.AUTO,
        ]
    ),
    lob_depth=st.sampled_from([2, 8, 64]),
    accuracy=st.one_of(st.none(), st.floats(min_value=0.3, max_value=0.99)),
    acc_writes_to_sim=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_batch_engines_are_bit_identical_on_random_workloads(
    seed, mode, lob_depth, accuracy, acc_writes_to_sim
):
    assert_batch_bit_identical(
        lambda: make_spec(seed, acc_writes_to_sim),
        mode=mode,
        total_cycles=180,
        lob_depth=lob_depth,
        forced_accuracy=accuracy,
        forced_accuracy_seed=seed,
    )


@given(
    n_domains=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
    mode=st.sampled_from([OperatingMode.CONSERVATIVE, OperatingMode.ALS]),
)
@settings(max_examples=15, deadline=None)
def test_batch_engines_are_bit_identical_across_topology_sizes(n_domains, seed, mode):
    if n_domains == 1:
        factory = lambda: sim_only_baseline_soc(seed=seed)
    else:
        factory = lambda: accelerator_farm_4x_soc(
            n_accelerators=n_domains - 1, n_bursts=4, seed=seed
        )
    assert_batch_bit_identical(factory, mode=mode, total_cycles=200)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss_rate=st.floats(min_value=0.0, max_value=0.2),
    duplicate_rate=st.floats(min_value=0.0, max_value=0.1),
    reorder_rate=st.floats(min_value=0.0, max_value=0.1),
    mode=st.sampled_from([OperatingMode.CONSERVATIVE, OperatingMode.ALS]),
    acc_writes_to_sim=st.booleans(),
)
@settings(max_examples=10, deadline=None)
def test_batch_engines_are_bit_identical_under_channel_faults(
    seed, loss_rate, duplicate_rate, reorder_rate, mode, acc_writes_to_sim
):
    def factory():
        spec = make_spec(seed, acc_writes_to_sim)
        spec.channel_faults = ChannelFaultConfig(
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
            reorder_rate=reorder_rate,
            jitter_mean=0.3e-6,
            jitter_spread=0.5e-6,
            seed=seed + 13,
        )
        return spec

    assert_batch_bit_identical(factory, mode=mode, total_cycles=180)
