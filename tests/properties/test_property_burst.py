"""Property-based tests for burst address generation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ahb.burst import BurstTracker, burst_addresses, wrap_boundary
from repro.ahb.signals import HBurst, HSize


fixed_bursts = st.sampled_from(
    [HBurst.SINGLE, HBurst.INCR4, HBurst.INCR8, HBurst.INCR16,
     HBurst.WRAP4, HBurst.WRAP8, HBurst.WRAP16]
)
sizes = st.sampled_from([HSize.BYTE, HSize.HALFWORD, HSize.WORD])


def aligned_addresses(size: HSize):
    return st.integers(min_value=0, max_value=0xFFFF).map(lambda n: n * size.bytes)


@given(burst=fixed_bursts, size=sizes, data=st.data())
@settings(max_examples=200)
def test_burst_has_expected_beat_count_and_alignment(burst, size, data):
    start = data.draw(aligned_addresses(size))
    addresses = burst_addresses(start, burst, size)
    assert len(addresses) == (burst.beats or 1)
    assert all(address % size.bytes == 0 for address in addresses)
    assert addresses[0] == start


@given(burst=fixed_bursts, size=sizes, data=st.data())
@settings(max_examples=200)
def test_burst_addresses_are_unique(burst, size, data):
    start = data.draw(aligned_addresses(size))
    addresses = burst_addresses(start, burst, size)
    assert len(set(addresses)) == len(addresses)


@given(
    burst=st.sampled_from([HBurst.WRAP4, HBurst.WRAP8, HBurst.WRAP16]),
    size=sizes,
    data=st.data(),
)
@settings(max_examples=200)
def test_wrapping_bursts_stay_inside_their_window(burst, size, data):
    start = data.draw(aligned_addresses(size))
    low, high = wrap_boundary(start, burst, size)
    addresses = burst_addresses(start, burst, size)
    assert all(low <= address < high for address in addresses)
    # the window is exactly covered
    assert sorted(addresses) == list(range(low, high, size.bytes))


@given(
    burst=st.sampled_from([HBurst.INCR4, HBurst.INCR8, HBurst.INCR16]),
    size=sizes,
    data=st.data(),
)
@settings(max_examples=200)
def test_incrementing_bursts_are_strictly_increasing_by_transfer_size(burst, size, data):
    start = data.draw(aligned_addresses(size))
    addresses = burst_addresses(start, burst, size)
    steps = {b - a for a, b in zip(addresses, addresses[1:])}
    assert steps == {size.bytes}


@given(burst=fixed_bursts, size=sizes, data=st.data())
@settings(max_examples=100)
def test_tracker_reproduces_burst_addresses(burst, size, data):
    start = data.draw(aligned_addresses(size))
    expected = burst_addresses(start, burst, size)
    tracker = BurstTracker.from_first_beat(start, burst, size)
    walked = []
    while not tracker.complete:
        walked.append(tracker.accept_beat())
    assert walked == expected


@given(burst=fixed_bursts, size=sizes, beats_done=st.integers(0, 16), data=st.data())
@settings(max_examples=100)
def test_tracker_snapshot_round_trip_preserves_remaining_sequence(burst, size, beats_done, data):
    start = data.draw(aligned_addresses(size))
    tracker = BurstTracker.from_first_beat(start, burst, size)
    for _ in range(min(beats_done, tracker.total_beats)):
        tracker.accept_beat()
    clone = BurstTracker.from_snapshot(tracker.snapshot())
    assert clone.remaining_addresses() == tracker.remaining_addresses()
