"""Property tests for the result cache and cold/warm sweep determinism."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.orchestration import (
    BatchRunner,
    ResultCache,
    RunRecord,
    RunStore,
    grid_requests,
)
from repro.orchestration.store import canonical_line

# ---------------------------------------------------------------------------
# Synthetic record strategy: exercises the cache's serialisation boundary
# without paying for engine runs.  Floats are finite (canonical JSON must
# round-trip them) and text stays printable one-line ASCII like real labels.
# ---------------------------------------------------------------------------

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
label_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=24
)
metric_dicts = st.dictionaries(
    st.sampled_from(["accesses", "rollbacks", "flushes", "accuracy", "depth"]),
    st.one_of(st.integers(-(2**40), 2**40), finite_floats),
    max_size=4,
)


@st.composite
def run_records(draw):
    request_id = draw(
        st.text(alphabet="0123456789abcdef", min_size=12, max_size=12)
    )
    return RunRecord(
        request_id=request_id,
        label=draw(label_text),
        scenario=draw(st.sampled_from(["single_master", "mixed", "als_streaming"])),
        mode=draw(st.sampled_from(["conservative", "als", "sla", "auto"])),
        engine=draw(st.sampled_from(["conventional", "optimistic", "analytical"])),
        seed=draw(st.integers(0, 2**48)),
        cycles=draw(st.integers(1, 10**6)),
        lob_depth=draw(st.integers(1, 1024)),
        accuracy=draw(st.none() | st.floats(0.0, 1.0, allow_nan=False)),
        committed_cycles=draw(st.integers(0, 10**6)),
        performance=draw(finite_floats),
        per_cycle_times=draw(metric_dicts),
        channel=draw(metric_dicts),
        transitions=draw(metric_dicts),
        prediction=draw(metric_dicts),
        lob=draw(metric_dicts),
        monitors_ok=draw(st.booleans()),
        wasted_leader_cycles=draw(st.integers(0, 10**6)),
        beat_digest=draw(st.text(alphabet="0123456789abcdef", max_size=16)),
    )


#: tmp_path is per-test, not per-example; every hypothesis example gets its
#: own cache directory so state never leaks between examples.
_example_dirs = itertools.count()


@settings(max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(record=run_records())
def test_cache_round_trip_preserves_records_exactly(tmp_path, record):
    """put -> fresh instance -> get reproduces the record field-for-field,
    and the shard line equals the record's canonical encoding."""
    root = tmp_path / f"cache{next(_example_dirs)}"
    writer = ResultCache(root)
    writer.put(record)
    reader = ResultCache(root)
    loaded = reader.get(record.request_id)
    assert loaded is not None
    assert loaded.as_dict() == record.as_dict()
    assert loaded.digest == record.digest
    assert canonical_line(loaded) == canonical_line(record)
    assert canonical_line(record) + "\n" in writer.shard_path(
        record.request_id
    ).read_text()


@settings(max_examples=20, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(records=st.lists(run_records(), min_size=1, max_size=8))
def test_cache_put_many_round_trips_batches(tmp_path, records):
    """Batched inserts keep every distinct record retrievable; duplicates by
    id collapse onto the first occurrence (first write wins)."""
    root = tmp_path / f"cache{next(_example_dirs)}"
    ResultCache(root).put_many(records)
    first_by_id = {}
    for record in records:
        first_by_id.setdefault(record.request_id, record)
    reader = ResultCache(root)
    assert len(reader) == len(first_by_id)
    for request_id, record in first_by_id.items():
        assert reader.get(request_id).as_dict() == record.as_dict()


# ---------------------------------------------------------------------------
# Cold vs warm sweeps over the real engines: identical store bytes at
# --jobs 1 and --jobs 4.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 4])
def test_cold_and_warm_cache_sweeps_write_identical_store_bytes(tmp_path, jobs):
    grid = grid_requests(
        scenarios=["single_master", "mixed"],
        modes=["conservative", "als"],
        cycles=60,
    )
    cache = ResultCache(tmp_path / "cache")
    baseline = RunStore(tmp_path / "baseline.jsonl")
    cold = RunStore(tmp_path / "cold.jsonl")
    warm = RunStore(tmp_path / "warm.jsonl")
    baseline.write(BatchRunner(jobs=jobs).run(grid))
    cold.write(BatchRunner(jobs=jobs).run(grid, cache=cache))
    assert cache.stats.hits == 0
    warm.write(BatchRunner(jobs=jobs).run(grid, cache=cache))
    assert cache.stats.hits == len(grid)
    assert baseline.digest() == cold.digest() == warm.digest()
    assert (tmp_path / "cold.jsonl").read_bytes() == (
        tmp_path / "warm.jsonl"
    ).read_bytes()
