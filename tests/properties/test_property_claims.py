"""Property-based tests for the lease-file claim protocol.

A miniature fleet simulator drives :class:`ClaimBoard` instances sharing one
claims directory through random interleavings of worker steps, clock
advances, crashes and restarts, checking the two safety properties the
protocol promises -- no two *alive* workers ever execute the same grid
point concurrently, and no completed point is ever executed again -- plus
the liveness property: every interleaving converges to full grid coverage
within a bounded number of drain rounds, because dead workers' leases
expire and get stolen.

Time is a shared fake monotonic clock; each clock advance also models the
heartbeat pump (live workers renew the lease of the point they are
executing), exactly as ``run_worker``'s background pump does.
"""

from __future__ import annotations

import tempfile
from collections import Counter
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orchestration.claims import ClaimBoard

GRID = [f"rid{i:02d}" for i in range(6)]
TTL = 10.0
N_WORKERS = 3


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class SimWorker:
    """One worker process: a board, a liveness flag, a point in flight."""

    def __init__(self, root: Path, index: int, clock: FakeClock) -> None:
        self.root = root
        self.index = index
        self.clock = clock
        self.generation = 0
        self.alive = True
        self.current = None
        self.board = self._new_board()

    def _new_board(self) -> ClaimBoard:
        return ClaimBoard(
            self.root,
            owner=f"w{self.index}-g{self.generation}",
            ttl=TTL,
            clock=self.clock,
        )

    def restart(self) -> None:
        """A crashed worker comes back as a fresh process (new owner id)."""
        self.generation += 1
        self.board = self._new_board()
        self.alive = True
        self.current = None


class FleetSim:
    def __init__(self, root: Path) -> None:
        self.clock = FakeClock()
        self.workers = [SimWorker(root, i, self.clock) for i in range(N_WORKERS)]
        self.completed = set()
        self.completions = Counter()

    # -- the four randomised operations ------------------------------------

    def advance(self, seconds: float) -> None:
        """Time passes; the heartbeat pump renews live in-flight leases."""
        self.clock.advance(seconds)
        for worker in self.workers:
            if worker.alive and worker.current is not None:
                worker.board.heartbeat(worker.current)

    def step(self, index: int) -> None:
        """One scheduling quantum: finish the point in hand, else claim one."""
        worker = self.workers[index]
        if not worker.alive:
            return
        if worker.current is not None:
            rid = worker.current
            assert rid not in self.completed, (
                f"{worker.board.owner} completed {rid} twice"
            )
            self.completed.add(rid)
            self.completions[rid] += 1
            worker.board.release(rid)
            worker.current = None
            return
        for rid in GRID:
            if rid in self.completed:  # the cache probe
                continue
            if worker.board.try_acquire(rid) is None:
                continue
            if rid in self.completed:  # post-acquire cache recheck
                worker.board.release(rid)
                continue
            executing = [
                other
                for other in self.workers
                if other is not worker and other.alive and other.current == rid
            ]
            assert not executing, (
                f"{worker.board.owner} acquired {rid} while "
                f"{executing[0].board.owner} (alive) is executing it"
            )
            worker.current = rid
            return

    def crash(self, index: int) -> None:
        """SIGKILL: leases stay on disk, heartbeats stop, nothing released."""
        self.workers[index].alive = False

    def restart(self, index: int) -> None:
        if not self.workers[index].alive:
            self.workers[index].restart()

    # -- safety and liveness checks ----------------------------------------

    def check_single_true_owner(self) -> None:
        """At most one board's self-belief of ownership matches the disk."""
        for rid in GRID:
            believers = [
                worker
                for worker in self.workers
                if rid in worker.board.owned
            ]
            lease = self.workers[0].board.read(rid)
            true_owners = [
                worker
                for worker in believers
                if lease is not None and lease.owner == worker.board.owner
            ]
            assert len(true_owners) <= 1, (
                f"{rid} has {len(true_owners)} matching owners on disk"
            )

    def drain(self) -> None:
        """Keep stepping until the grid is covered; bounded, so a stuck
        lease (a steal that can never happen) fails the test as a timeout."""
        rounds = 0
        while self.completed != set(GRID):
            rounds += 1
            assert rounds <= 4 * len(GRID) + 8, (
                f"no convergence after {rounds} rounds; "
                f"missing {sorted(set(GRID) - self.completed)}"
            )
            if not any(worker.alive for worker in self.workers):
                self.workers[0].restart()
            self.advance(TTL + 1.0)
            for index in range(len(self.workers)):
                self.step(index)  # finish whatever is in hand
                self.step(index)  # then claim (or steal) the next point


operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("advance"),
            st.floats(min_value=0.1, max_value=1.5 * TTL, allow_nan=False),
        ),
        st.tuples(st.just("step"), st.integers(0, N_WORKERS - 1)),
        st.tuples(st.just("crash"), st.integers(0, N_WORKERS - 1)),
        st.tuples(st.just("restart"), st.integers(0, N_WORKERS - 1)),
    ),
    min_size=5,
    max_size=50,
)


@given(ops=operations)
@settings(max_examples=40, deadline=None)
def test_random_interleavings_never_double_execute_and_converge(ops):
    with tempfile.TemporaryDirectory(prefix="claims-prop-") as tmp:
        sim = FleetSim(Path(tmp) / "claims")
        for name, arg in ops:
            getattr(sim, name)(arg)
            sim.check_single_true_owner()
        sim.drain()
        assert sim.completed == set(GRID)
        # Liveness converged *and* safety held: exactly one completion each.
        assert all(sim.completions[rid] == 1 for rid in GRID)


@given(ops=operations)
@settings(max_examples=25, deadline=None)
def test_crashed_workers_leases_are_always_stolen_not_waited_out(ops):
    """However the random prefix leaves the board, killing every worker and
    bringing up one fresh recruit must still cover the whole grid: the
    recruit can steal any dangling lease after one observed TTL."""
    with tempfile.TemporaryDirectory(prefix="claims-prop-") as tmp:
        sim = FleetSim(Path(tmp) / "claims")
        for name, arg in ops:
            getattr(sim, name)(arg)
        for index in range(N_WORKERS):
            sim.crash(index)
        sim.restart(0)
        sim.drain()
        assert sim.completed == set(GRID)
        assert all(sim.completions[rid] == 1 for rid in GRID)
