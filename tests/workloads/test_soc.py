"""Unit tests for SoC specifications and their instantiation."""

from __future__ import annotations

import pytest

from repro.sim.component import Domain
from repro.sim.kernel import CycleKernel
from repro.workloads.soc import (
    MasterSpec,
    SlaveSpec,
    SocSpec,
    als_streaming_soc,
    mixed_soc,
    single_master_soc,
    sla_streaming_soc,
)


CANNED = {
    "als": als_streaming_soc,
    "sla": sla_streaming_soc,
    "mixed": mixed_soc,
    "single": single_master_soc,
}


@pytest.mark.parametrize("name", sorted(CANNED))
def test_canned_specs_validate(name):
    spec = CANNED[name]()
    spec.validate()
    assert spec.masters and spec.slaves


def test_duplicate_ids_rejected():
    spec = als_streaming_soc()
    spec.masters.append(
        MasterSpec(master_id=0, name="dup", domain=Domain.SIMULATOR, transactions=list)
    )
    with pytest.raises(ValueError):
        spec.validate()


def test_empty_spec_rejected():
    with pytest.raises(ValueError):
        SocSpec(name="empty").validate()


def test_domain_filters():
    spec = als_streaming_soc()
    acc_masters = spec.masters_in(Domain.ACCELERATOR)
    sim_slaves = spec.slaves_in(Domain.SIMULATOR)
    assert all(m.domain is Domain.ACCELERATOR for m in acc_masters)
    assert all(s.domain is Domain.SIMULATOR for s in sim_slaves)
    assert len(acc_masters) == 3
    assert len(sim_slaves) == 2


def test_build_reference_creates_runnable_monolithic_bus():
    bus, masters = als_streaming_soc(n_bursts=4).build_reference()
    kernel = CycleKernel("ref")
    kernel.add_component(bus)
    kernel.run(200)
    assert all(master.done for master in masters.values())
    assert bus.monitor.ok


def test_build_split_places_components_by_domain():
    spec = als_streaming_soc()
    sim_hbm, acc_hbm, masters = spec.build_split()
    for master_spec in spec.masters:
        if master_spec.domain is Domain.ACCELERATOR:
            assert master_spec.master_id in acc_hbm.local_masters
            assert master_spec.master_id in sim_hbm.remote_master_ids
        else:
            assert master_spec.master_id in sim_hbm.local_masters
    for slave_spec in spec.slaves:
        owner = sim_hbm if slave_spec.domain is Domain.SIMULATOR else acc_hbm
        other = acc_hbm if owner is sim_hbm else sim_hbm
        assert slave_spec.slave_id in owner.local_slaves
        assert slave_spec.slave_id in other.remote_slave_ids


def test_build_split_and_reference_use_fresh_component_instances():
    spec = als_streaming_soc()
    bus, ref_masters = spec.build_reference()
    sim_hbm, acc_hbm, split_masters = spec.build_split()
    assert ref_masters[0] is not split_masters[0]
    # identical traffic queues despite being distinct objects
    assert [t.address for t in ref_masters[0].queue] == [
        t.address for t in split_masters[0].queue
    ]


def test_fifo_slave_kind_is_instantiated():
    spec = SocSpec(
        name="fifo_soc",
        masters=[
            MasterSpec(
                master_id=0,
                name="m",
                domain=Domain.ACCELERATOR,
                transactions=lambda: [],
            )
        ],
        slaves=[
            SlaveSpec(
                slave_id=0,
                name="fifo",
                domain=Domain.ACCELERATOR,
                base=0x0,
                size=0x1000,
                kind="fifo",
                fifo_depth=4,
            )
        ],
    )
    _, acc_hbm, _ = spec.build_split()
    from repro.ahb.slave import FifoPeripheralSlave

    assert isinstance(acc_hbm.local_slaves[0], FifoPeripheralSlave)


def test_unknown_slave_kind_rejected():
    spec = single_master_soc()
    spec.slaves[0].kind = "mystery"
    with pytest.raises(ValueError):
        spec.build_reference()


def test_single_master_soc_domains_configurable():
    spec = single_master_soc(
        master_domain=Domain.SIMULATOR, slave_domain=Domain.ACCELERATOR, write=False
    )
    sim_hbm, acc_hbm, _ = spec.build_split()
    assert 0 in sim_hbm.local_masters
    assert 0 in acc_hbm.local_slaves
