"""Unit tests for the synthetic traffic generators."""

from __future__ import annotations

import pytest

from repro.ahb.burst import burst_addresses
from repro.ahb.signals import HBurst, HSize
from repro.workloads.generators import (
    AddressWindow,
    TrafficProfile,
    cpu_like_traffic,
    dma_copy_traffic,
    generate_traffic,
    interleaved_issue_cycles,
    streaming_read_traffic,
    streaming_write_traffic,
)


WINDOW = AddressWindow(base=0x1000, size=0x1000)
OTHER = AddressWindow(base=0x8000, size=0x1000)


class TestAddressWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            AddressWindow(base=0x2, size=0x100)
        with pytest.raises(ValueError):
            AddressWindow(base=0x0, size=0)

    def test_random_burst_start_keeps_burst_inside_window(self):
        import random

        rng = random.Random(0)
        for _ in range(200):
            start = WINDOW.random_burst_start(rng, HBurst.INCR16, HSize.WORD)
            addresses = burst_addresses(start, HBurst.INCR16, HSize.WORD)
            assert all(WINDOW.base <= a < WINDOW.base + WINDOW.size for a in addresses)

    def test_window_too_small_for_burst_rejected(self):
        import random

        tiny = AddressWindow(base=0x0, size=0x10)
        with pytest.raises(ValueError):
            tiny.random_burst_start(random.Random(0), HBurst.INCR16, HSize.WORD)


class TestGenerateTraffic:
    def test_deterministic_for_same_seed(self):
        profile = TrafficProfile(
            master_id=0, n_transactions=20, read_windows=(WINDOW,), write_windows=(OTHER,), seed=9
        )
        first = generate_traffic(profile)
        second = generate_traffic(profile)
        assert [(t.address, t.write, tuple(t.data)) for t in first] == [
            (t.address, t.write, tuple(t.data)) for t in second
        ]

    def test_different_seeds_differ(self):
        base = dict(master_id=0, n_transactions=20, read_windows=(WINDOW,), write_windows=(OTHER,))
        a = generate_traffic(TrafficProfile(seed=1, **base))
        b = generate_traffic(TrafficProfile(seed=2, **base))
        assert [t.address for t in a] != [t.address for t in b]

    def test_write_fraction_respected_roughly(self):
        profile = TrafficProfile(
            master_id=0,
            n_transactions=400,
            write_fraction=0.25,
            read_windows=(WINDOW,),
            write_windows=(OTHER,),
            seed=3,
        )
        transactions = generate_traffic(profile)
        writes = sum(1 for t in transactions if t.write)
        assert 0.15 < writes / len(transactions) < 0.35

    def test_write_transactions_carry_data_for_every_beat(self):
        profile = TrafficProfile(
            master_id=0, n_transactions=50, write_fraction=1.0, write_windows=(WINDOW,), seed=5
        )
        for txn in generate_traffic(profile):
            assert txn.write
            assert len(txn.data) == txn.n_beats

    def test_issue_gap_produces_monotone_issue_cycles(self):
        profile = TrafficProfile(
            master_id=0,
            n_transactions=10,
            read_windows=(WINDOW,),
            issue_gap=4,
            issue_gap_jitter=2,
            seed=1,
        )
        cycles = [t.issue_cycle for t in generate_traffic(profile)]
        assert cycles == sorted(cycles)
        assert cycles[-1] >= 9 * 4

    def test_profile_without_windows_rejected(self):
        with pytest.raises(ValueError):
            generate_traffic(TrafficProfile(master_id=0, n_transactions=1))

    def test_validation_of_profile_parameters(self):
        with pytest.raises(ValueError):
            TrafficProfile(master_id=0, write_fraction=1.5)
        with pytest.raises(ValueError):
            TrafficProfile(master_id=0, n_transactions=-1)


class TestCannedGenerators:
    def test_dma_copy_alternates_reads_and_writes(self):
        transactions = dma_copy_traffic(2, source=WINDOW, destination=OTHER, n_blocks=5)
        assert len(transactions) == 10
        assert [t.write for t in transactions] == [False, True] * 5
        for txn in transactions:
            window = OTHER if txn.write else WINDOW
            assert window.base <= txn.address < window.base + window.size
            assert txn.master_id == 2

    def test_streaming_write_addresses_advance_and_wrap(self):
        transactions = streaming_write_traffic(0, AddressWindow(0x0, 0x80), n_bursts=6, burst=HBurst.INCR8)
        addresses = [t.address for t in transactions]
        assert addresses[:4] == [0x0, 0x20, 0x40, 0x60]
        assert addresses[4] == 0x0  # wrapped

    def test_streaming_read_is_read_only(self):
        transactions = streaming_read_traffic(1, WINDOW, n_bursts=4)
        assert all(not t.write for t in transactions)
        assert all(t.master_id == 1 for t in transactions)

    def test_cpu_like_traffic_is_mostly_reads_with_gaps(self):
        transactions = cpu_like_traffic(0, WINDOW, OTHER, n_transactions=100)
        reads = sum(1 for t in transactions if not t.write)
        assert reads > 50
        assert transactions[-1].issue_cycle > 0

    def test_interleaved_issue_cycles_respaces_transactions(self):
        transactions = streaming_write_traffic(0, WINDOW, n_bursts=5)
        spaced = interleaved_issue_cycles(transactions, start=10, gap=3)
        assert [t.issue_cycle for t in spaced] == [10, 13, 16, 19, 22]
        # original content preserved
        assert [t.address for t in spaced] == [t.address for t in transactions]
