"""Unit tests for trace capture, comparison and serialisation."""

from __future__ import annotations

from repro.ahb.signals import HBurst, HResp, HSize
from repro.ahb.transaction import CompletedBeat, TransactionRecorder
from repro.workloads.trace import BusTrace, beat_to_dict, traces_equivalent


def make_beat(master=0, addr=0x0, data=1, cycle=0, write=True, first=True):
    return CompletedBeat(
        cycle=cycle,
        master_id=master,
        address=addr,
        write=write,
        data=data,
        hresp=HResp.OKAY,
        hburst=HBurst.SINGLE,
        hsize=HSize.WORD,
        first_beat=first,
    )


def recorder_with(beats):
    recorder = TransactionRecorder()
    for beat in beats:
        recorder.record_beat(beat)
    return recorder


def test_beat_to_dict_optionally_includes_cycle():
    beat = make_beat(cycle=42)
    assert "cycle" not in beat_to_dict(beat)
    assert beat_to_dict(beat, include_cycle=True)["cycle"] == 42


def test_traces_with_same_content_match_even_if_cycles_differ():
    a = BusTrace.from_recorder("a", recorder_with([make_beat(cycle=1), make_beat(addr=0x4, cycle=2, first=False)]))
    b = BusTrace.from_recorder("b", recorder_with([make_beat(cycle=100), make_beat(addr=0x4, cycle=350, first=False)]))
    assert a.matches(b)
    assert a.diff(b) == []


def test_traces_with_different_content_do_not_match():
    a = BusTrace.from_recorder("a", recorder_with([make_beat(data=1)]))
    b = BusTrace.from_recorder("b", recorder_with([make_beat(data=2)]))
    assert not a.matches(b)
    assert a.diff(b)


def test_diff_reports_length_mismatch():
    a = BusTrace.from_recorder("a", recorder_with([make_beat(), make_beat(addr=0x4)]))
    b = BusTrace.from_recorder("b", recorder_with([make_beat()]))
    problems = a.diff(b)
    assert any("beats" in p for p in problems)


def test_per_master_streams_are_separated():
    trace = BusTrace.from_recorder(
        "t",
        recorder_with([make_beat(master=0), make_beat(master=1, addr=0x100), make_beat(master=0, addr=0x4)]),
    )
    streams = trace.per_master_streams()
    assert len(streams[0]) == 2
    assert len(streams[1]) == 1


def test_merged_keeps_the_longest_recorder():
    short = recorder_with([make_beat()])
    long = recorder_with([make_beat(), make_beat(addr=0x4)])
    merged = BusTrace.merged("m", [short, long])
    assert len(merged.beats) == 2
    assert BusTrace.merged("empty", []).beats == []


def test_json_round_trip(tmp_path):
    trace = BusTrace.from_recorder("t", recorder_with([make_beat(), make_beat(addr=0x8)]))
    path = trace.save(tmp_path / "trace.json")
    loaded = BusTrace.load(path)
    assert loaded.label == "t"
    assert loaded.matches(trace)
    assert loaded.transactions == trace.transactions


def test_traces_equivalent_helper():
    reference = recorder_with([make_beat(), make_beat(addr=0x4)])
    same = recorder_with([make_beat(cycle=9), make_beat(addr=0x4, cycle=20)])
    different = recorder_with([make_beat(data=99)])
    assert traces_equivalent(reference, [same]) is None
    message = traces_equivalent(reference, [same, different])
    assert message is not None and "differs" in message
