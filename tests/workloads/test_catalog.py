"""Tests for the scenario catalog."""

from __future__ import annotations

import pytest

from repro.core import CoEmulationConfig, OperatingMode, create_engine
from repro.workloads import SocSpec, als_streaming_soc
from repro.workloads.catalog import (
    ScenarioCatalogError,
    build_scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)


def test_catalog_has_at_least_eight_scenarios():
    names = scenario_names()
    assert len(names) >= 8
    assert len(set(names)) == len(names)
    # the paper-era trio is preserved
    assert {"als_streaming", "sla_streaming", "mixed"} <= set(names)
    # the new traffic shapes exist
    assert {
        "multi_master_contention",
        "dma_burst_storm",
        "interrupt_control",
        "sparse_telemetry",
        "rmw_fifo",
    } <= set(names)
    # the multi-domain topologies exist
    assert {
        "dual_accelerator_pipeline",
        "accelerator_farm_4x",
        "sim_only_baseline",
    } <= set(names)


def test_every_scenario_builds_a_valid_spec():
    for info in list_scenarios():
        spec = info.builder()
        assert isinstance(spec, SocSpec)
        spec.validate()
        assert spec.description


def test_scenarios_are_sorted_and_tag_filtered():
    names = scenario_names()
    assert names == sorted(names)
    streaming = scenario_names(tag="paper")
    assert set(streaming) == {"als_streaming", "sla_streaming", "mixed"}
    assert scenario_names(tag="no-such-tag") == []


def test_build_scenario_forwards_builder_kwargs():
    small = build_scenario("als_streaming", n_bursts=2)
    big = build_scenario("als_streaming", n_bursts=20)
    assert len(small.masters[0].transactions()) < len(big.masters[0].transactions())


def test_registered_builder_matches_original():
    assert get_scenario("als_streaming").builder is als_streaming_soc


def test_unknown_scenario_raises():
    with pytest.raises(ScenarioCatalogError, match="unknown scenario"):
        build_scenario("not-a-scenario")


def test_duplicate_registration_rejected():
    with pytest.raises(ScenarioCatalogError, match="already registered"):
        register_scenario("mixed")(als_streaming_soc)


@pytest.mark.parametrize("name", scenario_names())
def test_new_scenarios_keep_functional_equivalence(name):
    """Every catalog scenario -- two-domain and multi-domain alike -- must
    produce identical committed traffic under the conservative and the
    optimistic schemes."""
    results = {}
    for mode in (OperatingMode.CONSERVATIVE, OperatingMode.ALS):
        spec = build_scenario(name)
        config = CoEmulationConfig(mode=mode, total_cycles=120, topology=spec.topology)
        partition = spec.build_partition()
        results[mode] = create_engine(config, partition=partition).run()
    conservative, optimistic = results[OperatingMode.CONSERVATIVE], results[OperatingMode.ALS]
    assert optimistic.domain_beat_keys == conservative.domain_beat_keys
    assert optimistic.sim_beat_keys == conservative.sim_beat_keys
    assert optimistic.acc_beat_keys == conservative.acc_beat_keys
    assert conservative.monitors_ok and optimistic.monitors_ok


@pytest.mark.parametrize("name", scenario_names())
@pytest.mark.parametrize("mode", [OperatingMode.CONSERVATIVE, OperatingMode.ALS])
def test_batch_engines_are_bit_identical_on_every_scenario(name, mode):
    """The batch-stepped engines must reproduce the scalar engines bit for
    bit -- beat streams, statistics and modelled times down to the last float
    -- on every catalog scenario, ideal-channel and faulty alike."""
    digests = {}
    for batch_stepping in (False, True):
        spec = build_scenario(name)
        config = CoEmulationConfig(
            mode=mode, total_cycles=120, batch_stepping=batch_stepping
        )
        config, partition = spec.prepare_run(config)
        result = create_engine(config, partition=partition).run()
        digests[batch_stepping] = repr(
            (
                sorted(result.domain_beat_keys.items()),
                result.committed_cycles,
                result.transitions,
                result.prediction,
                {k: repr(v) for k, v in result.per_cycle_times.items()},
                repr(result.total_modelled_time),
                result.channel.get("accesses"),
                result.channel.get("words"),
                repr(result.channel.get("total_time")),
                result.wasted_leader_cycles,
                result.monitors_ok,
            )
        )
    assert digests[True] == digests[False]


def test_faulty_tag_lists_the_degraded_scenarios():
    faulty = scenario_names(tag="faulty")
    assert set(faulty) == {"lossy_streaming", "bursty_link_mixed", "degraded_pipeline"}


@pytest.mark.parametrize(
    "name", ["lossy_streaming", "bursty_link_mixed", "degraded_pipeline"]
)
def test_faulty_scenarios_declare_non_ideal_channel_faults(name):
    spec = build_scenario(name)
    assert spec.channel_faults is not None
    assert not spec.channel_faults.is_ideal
    # the fault declaration survives the builder's kwargs path too
    assert get_scenario(name).description
