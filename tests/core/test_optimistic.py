"""Tests of the optimistic (prediction packetizing) co-emulation engine."""

from __future__ import annotations

import pytest

from repro.core import (
    CoEmulationConfig,
    ConventionalCoEmulation,
    OperatingMode,
    OptimisticCoEmulation,
)
from repro.core.optimistic import CwPath
from repro.sim.component import Domain
from repro.workloads import single_master_soc


def run_optimistic(spec, mode=OperatingMode.ALS, cycles=300, trace=False, **kwargs):
    sim_hbm, acc_hbm, masters = spec.build_split()
    config = CoEmulationConfig(mode=mode, total_cycles=cycles, **kwargs)
    engine = OptimisticCoEmulation(sim_hbm, acc_hbm, config, trace_paths=trace)
    result = engine.run()
    return result, engine, masters


def run_conventional(spec, cycles=300, **kwargs):
    sim_hbm, acc_hbm, _ = spec.build_split()
    config = CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=cycles, **kwargs)
    return ConventionalCoEmulation(sim_hbm, acc_hbm, config).run()


class TestAlsBasics:
    def test_conservative_mode_is_rejected(self, als_spec):
        sim_hbm, acc_hbm, _ = als_spec.build_split()
        with pytest.raises(ValueError):
            OptimisticCoEmulation(
                sim_hbm, acc_hbm, CoEmulationConfig(mode=OperatingMode.CONSERVATIVE)
            )

    def test_runs_requested_number_of_cycles(self, als_spec):
        result, _, _ = run_optimistic(als_spec, cycles=250)
        assert result.committed_cycles >= 250

    def test_channel_accesses_are_dramatically_reduced(self, als_spec):
        optimistic, _, _ = run_optimistic(als_spec, cycles=300)
        conventional = run_conventional(als_spec, cycles=300)
        assert optimistic.channel["accesses"] < conventional.channel["accesses"] / 5

    def test_performance_gain_over_conventional(self, als_spec):
        optimistic, _, _ = run_optimistic(als_spec, cycles=300)
        conventional = run_conventional(als_spec, cycles=300)
        assert optimistic.speedup_over(conventional) > 5.0

    def test_predictions_are_actually_made_and_correct(self, als_spec):
        result, _, _ = run_optimistic(als_spec, cycles=300)
        assert result.prediction["predictions_checked"] > 100
        assert result.prediction["accuracy"] > 0.95
        assert result.transitions["transitions"] > 0

    def test_functional_equivalence_with_conventional_run(self, als_spec):
        optimistic, engine, _ = run_optimistic(als_spec, cycles=400)
        conventional = run_conventional(als_spec, cycles=400)
        assert optimistic.sim_beat_keys == conventional.sim_beat_keys
        assert optimistic.monitors_ok

    def test_lagger_and_leader_recorders_agree(self, als_spec):
        result, engine, _ = run_optimistic(als_spec, cycles=300)
        assert engine.sim_host.hbm.recorder.beat_keys() == engine.acc_host.hbm.recorder.beat_keys()

    def test_domains_are_synchronized_at_the_end(self, als_spec):
        _, engine, _ = run_optimistic(als_spec, cycles=300)
        assert engine.sim_host.current_cycle == engine.acc_host.current_cycle
        assert engine.sim_host.hbm.core.granted_master == engine.acc_host.hbm.core.granted_master


class TestForcedAccuracy:
    def test_injected_failures_cause_rollbacks_but_keep_correctness(self, als_spec):
        forced, engine, _ = run_optimistic(als_spec, cycles=300, forced_accuracy=0.8)
        conventional = run_conventional(als_spec, cycles=300)
        assert forced.transitions["rollbacks"] > 0
        assert forced.sim_beat_keys == conventional.sim_beat_keys
        assert forced.monitors_ok

    def test_lower_accuracy_means_lower_performance(self, als_spec):
        high, _, _ = run_optimistic(als_spec, cycles=300, forced_accuracy=0.99)
        low, _, _ = run_optimistic(als_spec, cycles=300, forced_accuracy=0.5)
        assert low.performance_cycles_per_second < high.performance_cycles_per_second

    def test_measured_accuracy_tracks_forced_accuracy(self, als_spec):
        result, _, _ = run_optimistic(als_spec, cycles=600, forced_accuracy=0.9)
        assert result.prediction["accuracy"] == pytest.approx(0.9, abs=0.06)

    def test_state_restore_time_is_charged_on_rollbacks(self, als_spec):
        result, _, _ = run_optimistic(als_spec, cycles=300, forced_accuracy=0.7)
        assert result.trestore > 0
        assert result.tstore > 0

    def test_forced_runs_are_reproducible_with_same_seed(self, als_spec):
        first, _, _ = run_optimistic(
            als_spec, cycles=200, forced_accuracy=0.8, forced_accuracy_seed=11
        )
        second, _, _ = run_optimistic(
            als_spec, cycles=200, forced_accuracy=0.8, forced_accuracy_seed=11
        )
        assert first.performance_cycles_per_second == pytest.approx(
            second.performance_cycles_per_second
        )
        assert first.transitions["rollbacks"] == second.transitions["rollbacks"]


class TestLobDepth:
    def test_run_ahead_is_bounded_by_lob_depth(self, als_spec):
        result, engine, _ = run_optimistic(als_spec, cycles=300, lob_depth=8)
        assert result.lob["max_occupancy_seen"] <= 8
        assert all(r.run_ahead_cycles <= 8 for r in engine.transitions.records)

    def test_deeper_lob_reduces_channel_accesses_at_high_accuracy(self, als_spec):
        shallow, _, _ = run_optimistic(als_spec, cycles=300, lob_depth=8)
        deep, _, _ = run_optimistic(als_spec, cycles=300, lob_depth=64)
        assert deep.channel["accesses"] < shallow.channel["accesses"]

    def test_deep_lob_hurts_at_low_accuracy(self, als_spec):
        shallow, _, _ = run_optimistic(
            als_spec, cycles=300, lob_depth=8, forced_accuracy=0.3
        )
        deep, _, _ = run_optimistic(
            als_spec, cycles=300, lob_depth=64, forced_accuracy=0.3
        )
        assert shallow.performance_cycles_per_second > deep.performance_cycles_per_second


class TestSlaAndAuto:
    def test_sla_leads_with_the_simulator(self, sla_spec):
        result, engine, masters = run_optimistic(sla_spec, mode=OperatingMode.SLA, cycles=400)
        assert result.transitions["leaders_used"].get("simulator", 0) > 0
        assert result.transitions["leaders_used"].get("accelerator", 0) == 0
        assert result.monitors_ok

    def test_sla_equivalent_to_conventional(self, sla_spec):
        optimistic, _, _ = run_optimistic(sla_spec, mode=OperatingMode.SLA, cycles=400)
        conventional = run_conventional(sla_spec, cycles=400)
        assert optimistic.sim_beat_keys == conventional.sim_beat_keys

    def test_auto_mode_runs_mixed_traffic_correctly(self, mixed_spec):
        optimistic, _, _ = run_optimistic(mixed_spec, mode=OperatingMode.AUTO, cycles=500)
        conventional = run_conventional(mixed_spec, cycles=500)
        assert optimistic.sim_beat_keys == conventional.sim_beat_keys
        assert optimistic.monitors_ok

    def test_als_on_sla_oriented_traffic_falls_back_to_conservative_cycles(self, sla_spec):
        """With the data source in the simulator, the accelerator-led mode
        cannot predict the write data and must synchronise often."""
        result, _, _ = run_optimistic(sla_spec, mode=OperatingMode.ALS, cycles=400)
        assert result.transitions["conservative_cycles"] > 50


class TestPathTrace:
    def test_trace_contains_prediction_and_lagger_paths(self, als_spec):
        _, engine, _ = run_optimistic(als_spec, cycles=200, trace=True)
        acc_paths = set(engine.trace.paths_for(Domain.ACCELERATOR))
        sim_paths = set(engine.trace.paths_for(Domain.SIMULATOR))
        assert CwPath.PREDICTION in acc_paths  # the leader runs ahead
        assert CwPath.SYNCHRONIZATION in acc_paths  # and flushes
        assert CwPath.LAGGER in sim_paths  # the lagger follows up
        assert CwPath.CONSERVATIVE in sim_paths

    def test_roll_forth_paths_appear_when_predictions_fail(self, als_spec):
        _, engine, _ = run_optimistic(
            als_spec, cycles=200, trace=True, forced_accuracy=0.7
        )
        acc_paths = set(engine.trace.paths_for(Domain.ACCELERATOR))
        assert CwPath.ROLL_FORTH in acc_paths

    def test_trace_disabled_by_default(self, als_spec):
        _, engine, _ = run_optimistic(als_spec, cycles=100)
        assert engine.trace.entries == []


class TestDegenerateCases:
    def test_read_heavy_remote_traffic_forces_conservative_operation(self):
        """A single master reading from a remote memory can never be led by
        the accelerator (read data is non-predictable), so the engine must
        degrade gracefully to mostly conservative cycles."""
        spec = single_master_soc(
            master_domain=Domain.ACCELERATOR,
            slave_domain=Domain.SIMULATOR,
            write=False,
            n_bursts=4,
        )
        result, _, masters = run_optimistic(spec, cycles=200)
        conventional = run_conventional(spec, cycles=200)
        assert result.sim_beat_keys == conventional.sim_beat_keys
        # every cycle in which the read bursts were on the bus had to be
        # synchronised conventionally
        assert result.transitions["conservative_cycles"] >= 30
        assert result.prediction["unpredictable_cycles"] > 0

    def test_single_cycle_runs(self, als_spec):
        result, _, _ = run_optimistic(als_spec, cycles=1)
        assert result.committed_cycles >= 1
