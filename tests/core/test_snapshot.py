"""Durable whole-engine snapshots: format, integrity checks, kill-resume.

The contract under test is the repository's strongest durability claim: an
engine snapshotted at a safe point and resumed in a fresh process finishes
with a record *bit-identical* (canonical JSON, digests included) to an
uninterrupted run.  The format tests pin the container down so a torn,
truncated or tampered file is always rejected, never silently resumed.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.coemulation import CoEmulationEngineBase
from repro.core.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    AbortRun,
    SnapshotError,
    SnapshotMeta,
    load_engine,
    read_snapshot,
    write_snapshot,
)
from repro.orchestration.request import (
    RunRequest,
    build_request_engine,
    canonical_json,
    record_from_result,
)


def _record(request, engine):
    return record_from_result(request, request.engine_name(), engine.run())


class _AbortAt:
    """A run hook that parks the engine at the first safe point >= cycle."""

    def __init__(self, cycle: int) -> None:
        self.cycle = cycle

    def __call__(self, engine) -> None:
        if engine.ledger.committed_cycles >= self.cycle:
            raise AbortRun(f"test abort at {engine.ledger.committed_cycles}")


def _interrupt(request: RunRequest, at_cycle: int):
    """Run ``request``'s engine until ``at_cycle`` and return it parked."""
    engine = build_request_engine(request)
    assert isinstance(engine, CoEmulationEngineBase)
    engine.run_hook = _AbortAt(at_cycle)
    with pytest.raises(AbortRun):
        engine.run()
    engine.run_hook = None
    return engine


# ---------------------------------------------------------------------------
# Container format and integrity checks.
# ---------------------------------------------------------------------------

def test_snapshot_file_layout_and_meta(tmp_path):
    request = RunRequest(scenario="single_master", mode="conservative", cycles=60)
    engine = _interrupt(request, at_cycle=20)
    path = tmp_path / "run.snap"
    meta = write_snapshot(path, engine, request_id=request.request_id)
    data = path.read_bytes()
    assert data.startswith(SNAPSHOT_MAGIC)
    assert meta.version == SNAPSHOT_VERSION
    assert meta.committed_cycles >= 20
    assert meta.total_cycles == 60
    assert meta.request_id == request.request_id
    assert meta.payload_length == len(data) - data.find(b"\n", len(SNAPSHOT_MAGIC)) - 1

    loaded_meta, loaded_engine = read_snapshot(path)
    assert loaded_meta == meta
    assert type(loaded_engine).__name__ == meta.engine


def test_snapshot_of_same_state_is_byte_identical(tmp_path):
    request = RunRequest(scenario="single_master", mode="conservative", cycles=60)
    engine = _interrupt(request, at_cycle=20)
    write_snapshot(tmp_path / "a.snap", engine, request_id=request.request_id)
    write_snapshot(tmp_path / "b.snap", engine, request_id=request.request_id)
    assert (tmp_path / "a.snap").read_bytes() == (tmp_path / "b.snap").read_bytes()


def test_read_snapshot_missing_file(tmp_path):
    with pytest.raises(SnapshotError, match="no snapshot"):
        read_snapshot(tmp_path / "nope.snap")


def test_read_snapshot_rejects_bad_magic(tmp_path):
    path = tmp_path / "bad.snap"
    path.write_bytes(b"not a snapshot at all\n")
    with pytest.raises(SnapshotError, match="bad magic"):
        read_snapshot(path)


def test_read_snapshot_rejects_truncated_payload(tmp_path):
    request = RunRequest(scenario="single_master", mode="conservative", cycles=60)
    engine = _interrupt(request, at_cycle=20)
    path = tmp_path / "run.snap"
    write_snapshot(path, engine)
    data = path.read_bytes()
    path.write_bytes(data[:-40])  # a crashed writer's torn tail
    with pytest.raises(SnapshotError, match="truncated|byte"):
        read_snapshot(path)


def test_read_snapshot_rejects_flipped_payload_byte(tmp_path):
    request = RunRequest(scenario="single_master", mode="conservative", cycles=60)
    engine = _interrupt(request, at_cycle=20)
    path = tmp_path / "run.snap"
    write_snapshot(path, engine)
    data = bytearray(path.read_bytes())
    data[-10] ^= 0xFF  # silent disk corruption in the pickle
    path.write_bytes(bytes(data))
    with pytest.raises(SnapshotError, match="digest"):
        read_snapshot(path)


def test_read_snapshot_rejects_future_version(tmp_path):
    request = RunRequest(scenario="single_master", mode="conservative", cycles=60)
    engine = _interrupt(request, at_cycle=20)
    path = tmp_path / "run.snap"
    meta = write_snapshot(path, engine)
    data = path.read_bytes()
    header_end = data.find(b"\n", len(SNAPSHOT_MAGIC))
    bumped = dict(meta.as_dict(), version=SNAPSHOT_VERSION + 1)
    import json

    new_header = json.dumps(bumped, sort_keys=True, separators=(",", ":")).encode()
    path.write_bytes(SNAPSHOT_MAGIC + new_header + data[header_end:])
    with pytest.raises(SnapshotError, match="format v2"):
        read_snapshot(path)


def test_meta_from_dict_rejects_missing_fields():
    with pytest.raises(SnapshotError, match="schema"):
        SnapshotMeta.from_dict({"version": 1})


def test_write_refuses_mid_transition_state(tmp_path):
    """An outstanding rollback checkpoint means we are not at a safe point."""
    request = RunRequest(scenario="als_streaming", mode="als", cycles=120)
    engine = _interrupt(request, at_cycle=30)
    host = engine._host_list[0]
    host.checkpoints.store(999)  # simulate an in-flight speculation window
    with pytest.raises(SnapshotError, match="safe point"):
        write_snapshot(tmp_path / "unsafe.snap", engine)


def test_snapshot_strips_hook_and_restores_it(tmp_path):
    request = RunRequest(scenario="single_master", mode="conservative", cycles=60)
    engine = _interrupt(request, at_cycle=20)
    sentinel = _AbortAt(10**9)
    engine.run_hook = sentinel
    write_snapshot(tmp_path / "run.snap", engine)
    assert engine.run_hook is sentinel  # writer put the caller's hook back
    assert load_engine(tmp_path / "run.snap").run_hook is None


# ---------------------------------------------------------------------------
# Kill-resume bit-identity.
# ---------------------------------------------------------------------------

RESUME_POINTS = [
    pytest.param(
        RunRequest(scenario="single_master", mode="conservative", cycles=90),
        30,
        id="conservative",
    ),
    pytest.param(
        RunRequest(scenario="als_streaming", mode="als", cycles=150, accuracy=0.9),
        60,
        id="als",
    ),
    pytest.param(
        RunRequest(scenario="dual_accelerator_pipeline", mode="als", cycles=150),
        50,
        id="multi-domain",
    ),
    pytest.param(
        RunRequest(scenario="lossy_streaming", mode="als", cycles=150),
        60,
        id="faulty-channel",
    ),
    pytest.param(
        RunRequest(scenario="mixed", mode="als", cycles=150, engine="als_batch"),
        50,
        id="batch-engine",
    ),
    pytest.param(
        RunRequest(
            scenario="sparse_telemetry",
            mode="conservative",
            cycles=200,
            engine="conventional_trace",
            config_overrides={"trace_replay": True},
        ),
        80,
        id="trace-engine",
    ),
]


@pytest.mark.parametrize("request_, at_cycle", RESUME_POINTS)
def test_kill_resume_is_bit_identical(tmp_path, request_, at_cycle):
    baseline = _record(request_, build_request_engine(request_))

    interrupted = _interrupt(request_, at_cycle=at_cycle)
    path = tmp_path / "run.snap"
    meta = write_snapshot(path, interrupted, request_id=request_.request_id)
    assert 0 < meta.committed_cycles < request_.cycles
    del interrupted  # the "killed" process's memory is gone

    resumed = CoEmulationEngineBase.restore(path)
    record = _record(request_, resumed)
    assert canonical_json(record.as_dict()) == canonical_json(baseline.as_dict())
    assert record.digest == baseline.digest


def test_double_interrupt_resume_is_bit_identical(tmp_path):
    """Two successive kill-resume hops lose nothing either."""
    request = RunRequest(scenario="als_streaming", mode="als", cycles=180)
    baseline = _record(request, build_request_engine(request))

    engine = _interrupt(request, at_cycle=40)
    write_snapshot(tmp_path / "one.snap", engine)
    engine = load_engine(tmp_path / "one.snap")
    engine.run_hook = _AbortAt(110)
    with pytest.raises(AbortRun):
        engine.run()
    engine.run_hook = None
    write_snapshot(tmp_path / "two.snap", engine)

    record = _record(request, load_engine(tmp_path / "two.snap"))
    assert canonical_json(record.as_dict()) == canonical_json(baseline.as_dict())


def test_restore_rejects_non_engine_pickle(tmp_path):
    """restore() type-checks what the snapshot actually holds."""
    request = RunRequest(scenario="single_master", mode="conservative", cycles=60)
    engine = _interrupt(request, at_cycle=20)
    path = tmp_path / "run.snap"
    write_snapshot(path, engine)
    # Re-wrap the file around a payload that is not an engine at all.
    payload = pickle.dumps({"not": "an engine"})
    import hashlib
    import json

    meta = dict(
        SnapshotMeta(
            version=SNAPSHOT_VERSION,
            engine="dict",
            committed_cycles=0,
            total_cycles=0,
            payload_sha256=hashlib.sha256(payload).hexdigest(),
            payload_length=len(payload),
        ).as_dict()
    )
    header = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode()
    path.write_bytes(SNAPSHOT_MAGIC + header + b"\n" + payload)
    with pytest.raises(SnapshotError, match="holds a dict"):
        CoEmulationEngineBase.restore(path)
