"""Unit tests for domain hosts (execution, checkpointing, cost charging)."""

from __future__ import annotations

import pytest

from repro.ahb.half_bus import BoundaryDrive, HalfBusModel
from repro.ahb.master import TrafficMaster
from repro.ahb.signals import DataPhaseResult, HBurst
from repro.ahb.slave import MemorySlave
from repro.ahb.transaction import BusTransaction
from repro.core.domain import DomainHost, DomainHostConfig, DomainHostError, assert_cores_in_sync
from repro.sim.checkpoint import ACCELERATOR_STATE_COSTS
from repro.sim.component import Domain
from repro.sim.time_model import DomainSpeed, WallClockLedger


def build_host(domain=Domain.ACCELERATOR, speed=10_000_000.0, budget=1000):
    hbm = HalfBusModel("hbm", domain)
    master = TrafficMaster(
        "m0", 0, [BusTransaction(0, 0x0, True, HBurst.INCR4, data=[1, 2, 3, 4])]
    )
    hbm.add_local_master(master)
    memory = MemorySlave("mem", 0, 0x0, 0x1000)
    hbm.add_local_slave(memory, 0x0, 0x1000)
    hbm.finalize()
    ledger = WallClockLedger()
    host = DomainHost(
        DomainHostConfig(
            domain=domain,
            speed=DomainSpeed(speed),
            state_costs=ACCELERATOR_STATE_COSTS,
            rollback_variable_budget=budget,
        ),
        hbm=hbm,
        ledger=ledger,
    )
    return host, ledger, master, memory


def empty_remote(cycle=0):
    return BoundaryDrive(cycle=cycle, requests={})


def test_execute_cycle_advances_clock_and_charges_time():
    host, ledger, _, _ = build_host()
    host.execute_cycle(empty_remote(), None)
    host.execute_cycle(empty_remote(), None)
    assert host.current_cycle == 2
    assert ledger.buckets["accelerator"] == pytest.approx(2e-7)
    assert ledger.buckets["simulator"] == 0.0


def test_simulator_host_charges_simulator_bucket():
    host, ledger, _, _ = build_host(domain=Domain.SIMULATOR, speed=1_000_000.0)
    host.execute_cycle(empty_remote(), None)
    assert ledger.buckets["simulator"] == pytest.approx(1e-6)


def test_local_traffic_executes_entirely_inside_one_domain():
    host, _, master, memory = build_host()
    for _ in range(12):
        host.execute_cycle(empty_remote(), None)
    assert master.done
    assert memory.read_word(0x8) == 3


def test_store_restore_checkpoint_rewinds_state_and_clock():
    host, ledger, master, memory = build_host()
    for _ in range(2):
        host.execute_cycle(empty_remote(), None)
    host.store_checkpoint()
    for _ in range(10):
        host.execute_cycle(empty_remote(), None)
    assert master.done
    host.restore_checkpoint()
    assert host.current_cycle == 2
    assert not master.done
    assert memory.read_word(0x8) == 0
    # both store and restore charged time
    assert ledger.buckets["state_store"] > 0
    assert ledger.buckets["state_restore"] > 0
    # wasted work is visible
    assert host.wasted_cycles == 10


def test_discard_checkpoint_keeps_state():
    host, _, master, _ = build_host()
    host.store_checkpoint()
    for _ in range(12):
        host.execute_cycle(empty_remote(), None)
    host.discard_checkpoint()
    assert master.done
    assert host.checkpoints.depth == 0


def test_rollback_variable_budget_is_used_for_costs():
    host, ledger, _, _ = build_host(budget=1000)
    host.store_checkpoint()
    expected = ACCELERATOR_STATE_COSTS.store_time(1000)
    assert ledger.buckets["state_store"] == pytest.approx(expected)
    assert host.rollback_variable_count() == 1000


def test_phase_level_api_commits_one_cycle():
    host, ledger, _, _ = build_host()
    drive = host.drive()
    merged = host.hbm.merge_drive(drive, empty_remote())
    response = host.respond(merged).response or DataPhaseResult.okay()
    host.commit(merged, response)
    assert host.current_cycle == 1
    assert ledger.buckets["accelerator"] == pytest.approx(1e-7)


def test_assert_cores_in_sync_detects_divergence():
    sim_host, _, _, _ = build_host(domain=Domain.SIMULATOR)
    acc_host, _, _, _ = build_host(domain=Domain.ACCELERATOR)
    assert_cores_in_sync(sim_host, acc_host)  # freshly built: in sync
    acc_host.execute_cycle(empty_remote(), None)
    with pytest.raises(DomainHostError):
        assert_cores_in_sync(sim_host, acc_host)


def test_master_and_slave_id_sets():
    host, _, _, _ = build_host()
    assert host.local_master_ids() == {0}
    assert 0 in host.local_slave_ids()
