"""Unit tests for the lagger-value predictors."""

from __future__ import annotations

import pytest

from repro.ahb.half_bus import BoundaryDrive, NeededFields
from repro.ahb.signals import AddressPhase, DataPhaseResult, HBurst, HResp, HSize, HTrans
from repro.core.prediction import (
    ForcedAccuracyModel,
    LaggerPredictor,
    PredictionRecord,
)


def needed(
    requests=True,
    address=False,
    hwdata=False,
    response=False,
    read=False,
    remote_ids=(1, 2),
):
    return NeededFields(
        remote_master_ids=tuple(remote_ids),
        needs_remote_requests=requests,
        needs_remote_address_phase=address,
        needs_remote_hwdata=hwdata,
        needs_remote_response=response,
        response_is_read=read,
    )


def drive(requests=None, phase=None, hwdata=None, interrupts=None, cycle=0):
    return BoundaryDrive(
        cycle=cycle,
        requests=requests or {},
        address_phase=phase,
        hwdata=hwdata,
        interrupts=interrupts or {},
    )


def burst_phase(addr, trans=HTrans.NONSEQ, master=1, burst=HBurst.INCR4, write=True):
    return AddressPhase(
        master_id=master, haddr=addr, htrans=trans, hwrite=write, hburst=burst, hsize=HSize.WORD
    )


class TestPredictionRecord:
    def test_matching_request_prediction(self):
        record = PredictionRecord(cycle=0, requests={1: True, 2: False})
        ok, reason = record.check(drive(requests={1: True, 2: False}), None)
        assert ok and reason == ""

    def test_mismatching_request_prediction(self):
        record = PredictionRecord(cycle=0, requests={1: False})
        ok, reason = record.check(drive(requests={1: True}), None)
        assert not ok and "bus request" in reason

    def test_address_phase_prediction_checked_field_by_field(self):
        predicted = burst_phase(0x104, HTrans.SEQ)
        record = PredictionRecord(cycle=0, address_phase=predicted)
        ok, _ = record.check(drive(phase=burst_phase(0x104, HTrans.SEQ)), None)
        assert ok
        ok, reason = record.check(drive(phase=burst_phase(0x108, HTrans.SEQ)), None)
        assert not ok and "address phase" in reason
        ok, reason = record.check(drive(phase=None), None)
        assert not ok

    def test_response_prediction_ignores_unpredicted_read_data(self):
        record = PredictionRecord(cycle=0, response=DataPhaseResult.okay())
        ok, _ = record.check(drive(), DataPhaseResult.okay(hrdata=0x1234))
        assert ok

    def test_response_mismatch_on_wait_state(self):
        record = PredictionRecord(cycle=0, response=DataPhaseResult.okay())
        ok, reason = record.check(drive(), DataPhaseResult.wait())
        assert not ok and "slave response" in reason

    def test_missing_actual_response_is_a_mismatch(self):
        record = PredictionRecord(cycle=0, response=DataPhaseResult.okay())
        ok, _ = record.check(drive(), None)
        assert not ok

    def test_forced_failure_always_mismatches(self):
        record = PredictionRecord(cycle=0, requests={1: True}, forced_failure=True)
        ok, reason = record.check(drive(requests={1: True}), None)
        assert not ok and "injected" in reason

    def test_interrupt_prediction(self):
        record = PredictionRecord(cycle=0, interrupts={"irq": True})
        ok, _ = record.check(drive(interrupts={"irq": True}), None)
        assert ok
        ok, reason = record.check(drive(interrupts={"irq": False}), None)
        assert not ok and "interrupt" in reason

    def test_write_data_prediction(self):
        record = PredictionRecord(cycle=0, hwdata=0x55)
        assert record.check(drive(hwdata=0x55), None)[0]
        assert not record.check(drive(hwdata=0x66), None)[0]

    def test_as_boundary_values_round_trip(self):
        record = PredictionRecord(
            cycle=3,
            requests={1: True},
            address_phase=burst_phase(0x100),
            response=DataPhaseResult.okay(),
        )
        remote_drive, remote_response = record.as_boundary_values(3)
        assert remote_drive.requests == {1: True}
        assert remote_drive.address_phase == burst_phase(0x100)
        assert remote_response == DataPhaseResult.okay()


class TestForcedAccuracyModel:
    def test_accuracy_one_never_fails(self):
        model = ForcedAccuracyModel(1.0)
        assert not any(model.should_fail() for _ in range(1000))

    def test_accuracy_zero_always_fails(self):
        model = ForcedAccuracyModel(0.0)
        assert all(model.should_fail() for _ in range(100))

    def test_failure_rate_tracks_target(self):
        model = ForcedAccuracyModel(0.8, seed=42)
        failures = sum(model.should_fail() for _ in range(20_000))
        assert 0.17 < failures / 20_000 < 0.23

    def test_seeded_model_is_reproducible(self):
        a = [ForcedAccuracyModel(0.5, seed=7).should_fail() for _ in range(50)]
        b = [ForcedAccuracyModel(0.5, seed=7).should_fail() for _ in range(50)]
        assert a == b

    def test_out_of_range_accuracy_rejected(self):
        with pytest.raises(ValueError):
            ForcedAccuracyModel(1.5)


class TestLaggerPredictor:
    def test_request_prediction_uses_last_observed_value(self):
        predictor = LaggerPredictor("p", remote_master_ids=[1, 2])
        predictor.observe(drive(requests={1: True, 2: False}), None)
        record = predictor.predict(0, needed())
        assert record.requests == {1: True, 2: False}

    def test_unobserved_requests_default_to_false(self):
        predictor = LaggerPredictor("p", remote_master_ids=[1])
        record = predictor.predict(0, needed(remote_ids=(1,)))
        assert record.requests == {1: False}

    def test_burst_continuation_is_predicted(self):
        predictor = LaggerPredictor("p", remote_master_ids=[1])
        predictor.observe(drive(phase=burst_phase(0x100, HTrans.NONSEQ)), None)
        record = predictor.predict(0, needed(address=True, remote_ids=(1,)))
        assert record.address_phase.haddr == 0x104
        assert record.address_phase.htrans is HTrans.SEQ
        # chaining: observing the prediction extrapolates the next beat
        predictor.observe(drive(phase=record.address_phase), None)
        record2 = predictor.predict(1, needed(address=True, remote_ids=(1,)))
        assert record2.address_phase.haddr == 0x108

    def test_finished_fixed_burst_predicts_idle(self):
        predictor = LaggerPredictor("p", remote_master_ids=[1])
        predictor.observe(drive(phase=burst_phase(0x100, HTrans.NONSEQ)), None)
        for addr in (0x104, 0x108, 0x10C):
            predictor.observe(drive(phase=burst_phase(addr, HTrans.SEQ)), None)
        record = predictor.predict(0, needed(address=True, remote_ids=(1,)))
        assert not record.address_phase.is_active

    def test_idle_remote_master_predicted_to_stay_idle(self):
        predictor = LaggerPredictor("p", remote_master_ids=[1])
        predictor.observe(drive(phase=burst_phase(0x100, HTrans.IDLE)), None)
        record = predictor.predict(0, needed(address=True, remote_ids=(1,)))
        assert not record.address_phase.is_active

    def test_response_prediction_is_ready_okay(self):
        predictor = LaggerPredictor("p", remote_master_ids=[1])
        record = predictor.predict(0, needed(response=True))
        assert record.response == DataPhaseResult(hready=True, hresp=HResp.OKAY, hrdata=None)

    def test_cannot_predict_remote_data_values(self):
        predictor = LaggerPredictor("p", remote_master_ids=[1])
        assert not predictor.can_predict(needed(hwdata=True))
        assert not predictor.can_predict(needed(response=True, read=True))
        assert predictor.can_predict(needed(response=True, read=False))

    def test_unknown_remote_burst_predictability_is_configurable(self):
        conservative = LaggerPredictor("p", remote_master_ids=[1], predict_new_remote_bursts=False)
        optimistic = LaggerPredictor("q", remote_master_ids=[1], predict_new_remote_bursts=True)
        fields = needed(address=True, remote_ids=(1,))
        assert not conservative.can_predict(fields)
        assert optimistic.can_predict(fields)

    def test_interrupts_predicted_from_last_value(self):
        predictor = LaggerPredictor("p", remote_master_ids=[1])
        predictor.observe(drive(interrupts={"irq": True}), None)
        record = predictor.predict(0, needed())
        assert record.interrupts == {"irq": True}

    def test_forced_accuracy_marks_predictions(self):
        predictor = LaggerPredictor(
            "p", remote_master_ids=[1], forced_accuracy=ForcedAccuracyModel(0.0)
        )
        record = predictor.predict(0, needed())
        assert record.forced_failure

    def test_accuracy_accounting(self):
        predictor = LaggerPredictor("p", remote_master_ids=[1])
        predictor.record_check(True, injected=False)
        predictor.record_check(False, injected=False)
        predictor.record_check(False, injected=True)
        predictor.record_unpredictable()
        stats = predictor.stats
        assert stats.predictions_checked == 3
        assert stats.predictions_correct == 1
        assert stats.real_failures == 1
        assert stats.injected_failures == 1
        assert stats.unpredictable_cycles == 1
        assert stats.accuracy == pytest.approx(1 / 3)

    def test_accuracy_is_one_when_nothing_checked(self):
        assert LaggerPredictor("p", remote_master_ids=[]).stats.accuracy == 1.0

    def test_snapshot_restore_round_trips_predictor_state(self):
        predictor = LaggerPredictor("p", remote_master_ids=[1])
        predictor.observe(drive(requests={1: True}, phase=burst_phase(0x200)), None)
        state = predictor.snapshot_state()
        predictor.observe(drive(requests={1: False}, phase=burst_phase(0x300)), None)
        predictor.restore_state(state)
        record = predictor.predict(0, needed(address=True, remote_ids=(1,)))
        assert record.requests == {1: True}
        assert record.address_phase.haddr == 0x204
