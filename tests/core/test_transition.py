"""Unit tests for transition bookkeeping."""

from __future__ import annotations

import pytest

from repro.core.transition import (
    TransitionLog,
    TransitionOutcome,
    TransitionRecord,
    TransitionStep,
)
from repro.sim.component import Domain


def test_transition_steps_match_paper_table1():
    assert {step.value for step in TransitionStep} == {
        "run_ahead",
        "follow_up",
        "rollback",
        "roll_forth",
    }


def test_wasted_leader_cycles_only_counted_on_misprediction():
    success = TransitionRecord(index=0, leader=Domain.ACCELERATOR, start_cycle=0,
                               run_ahead_cycles=10, committed_cycles=10,
                               outcome=TransitionOutcome.SUCCESS)
    assert success.wasted_leader_cycles == 0
    failed = TransitionRecord(index=1, leader=Domain.ACCELERATOR, start_cycle=10,
                              run_ahead_cycles=10, committed_cycles=3,
                              outcome=TransitionOutcome.MISPREDICTION)
    assert failed.wasted_leader_cycles == 7


def test_log_aggregates_counts_and_means():
    log = TransitionLog()
    first = log.new_record(Domain.ACCELERATOR, start_cycle=0)
    first.run_ahead_cycles = 8
    first.committed_cycles = 8
    first.outcome = TransitionOutcome.SUCCESS
    second = log.new_record(Domain.ACCELERATOR, start_cycle=8)
    second.run_ahead_cycles = 8
    second.committed_cycles = 2
    second.roll_forth_cycles = 2
    second.outcome = TransitionOutcome.MISPREDICTION
    third = log.new_record(Domain.SIMULATOR, start_cycle=10)
    third.outcome = TransitionOutcome.DEGENERATE
    log.record_conservative_cycle(5)

    assert log.transitions == 3
    assert log.successful_transitions == 1
    assert log.rollbacks == 1
    assert log.degenerate_transitions == 1
    assert log.conservative_cycles == 5
    assert log.total_run_ahead_cycles == 16
    assert log.total_roll_forth_cycles == 2
    assert log.total_wasted_leader_cycles == 6
    assert log.mean_run_ahead_length() == pytest.approx(16 / 3)
    assert log.mean_committed_per_transition() == pytest.approx(10 / 3)
    assert log.leaders_used() == {"accelerator": 2, "simulator": 1}


def test_log_as_dict_contains_all_keys():
    log = TransitionLog()
    log.new_record(Domain.ACCELERATOR, 0)
    payload = log.as_dict()
    for key in (
        "transitions",
        "successful_transitions",
        "rollbacks",
        "degenerate_transitions",
        "conservative_cycles",
        "mean_run_ahead_length",
        "leaders_used",
    ):
        assert key in payload


def test_empty_log_means_are_zero():
    log = TransitionLog()
    assert log.mean_run_ahead_length() == 0.0
    assert log.mean_committed_per_transition() == 0.0


def test_record_indices_are_sequential():
    log = TransitionLog()
    records = [log.new_record(Domain.ACCELERATOR, cycle) for cycle in range(4)]
    assert [record.index for record in records] == [0, 1, 2, 3]
