"""Tests for the co-emulation result containers and engine bookkeeping."""

from __future__ import annotations

import pytest

from repro.core import (
    CoEmulationConfig,
    ConventionalCoEmulation,
    OperatingMode,
    OptimisticCoEmulation,
)
from repro.workloads import als_streaming_soc


@pytest.fixture(scope="module")
def als_results():
    spec = als_streaming_soc(n_bursts=8)
    sim_hbm, acc_hbm, _ = spec.build_split()
    optimistic = OptimisticCoEmulation(
        sim_hbm, acc_hbm, CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=300)
    ).run()
    spec2 = als_streaming_soc(n_bursts=8)
    sim2, acc2, _ = spec2.build_split()
    conventional = ConventionalCoEmulation(
        sim2, acc2, CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=300)
    ).run()
    return optimistic, conventional


def test_per_cycle_times_sum_to_total(als_results):
    optimistic, _ = als_results
    total = sum(optimistic.per_cycle_times.values()) * optimistic.committed_cycles
    assert total == pytest.approx(optimistic.total_modelled_time, rel=1e-9)


def test_performance_is_reciprocal_of_per_cycle_total(als_results):
    optimistic, _ = als_results
    per_cycle = sum(optimistic.per_cycle_times.values())
    assert optimistic.performance_cycles_per_second == pytest.approx(1.0 / per_cycle, rel=1e-9)


def test_property_accessors_match_breakdown(als_results):
    optimistic, _ = als_results
    assert optimistic.tsim == optimistic.per_cycle_times["simulator"]
    assert optimistic.tacc == optimistic.per_cycle_times["accelerator"]
    assert optimistic.tstore == optimistic.per_cycle_times["state_store"]
    assert optimistic.trestore == optimistic.per_cycle_times["state_restore"]
    assert optimistic.tchannel == optimistic.per_cycle_times["channel"]


def test_speedup_over_is_symmetric_inverse(als_results):
    optimistic, conventional = als_results
    forward = optimistic.speedup_over(conventional)
    backward = conventional.speedup_over(optimistic)
    assert forward * backward == pytest.approx(1.0, rel=1e-9)
    assert forward > 1.0


def test_lob_stats_propagated_into_result(als_results):
    optimistic, _ = als_results
    assert optimistic.lob["flushes"] == optimistic.transitions["transitions"] - optimistic.transitions["degenerate_transitions"]
    assert optimistic.lob["entries_flushed"] >= optimistic.lob["flushes"]
    assert optimistic.lob["max_occupancy_seen"] <= 64


def test_transition_accounting_consistent_with_committed_cycles(als_results):
    optimistic, _ = als_results
    committed_by_transitions = optimistic.transitions["mean_committed_per_transition"] * (
        optimistic.transitions["transitions"]
    )
    total = committed_by_transitions + optimistic.transitions["conservative_cycles"]
    assert total == pytest.approx(optimistic.committed_cycles, rel=1e-9)


def test_channel_purpose_breakdown_present(als_results):
    optimistic, conventional = als_results
    assert "lob_flush" in optimistic.channel["per_purpose"]
    assert optimistic.channel["per_purpose"]["lob_flush"] >= 1
    assert set(conventional.channel["per_purpose"]) == {
        "conservative_drive",
        "conservative_reply",
    }


def test_wasted_leader_cycles_zero_without_mispredictions(als_results):
    optimistic, _ = als_results
    assert optimistic.transitions["rollbacks"] == 0
    assert optimistic.wasted_leader_cycles == 0


def test_conventional_result_has_no_transitions(als_results):
    _, conventional = als_results
    assert conventional.transitions["transitions"] == 0
    assert conventional.lob == {}
    assert conventional.prediction["predictions_made"] == 0
