"""Unit tests for operating modes and mode policies."""

from __future__ import annotations

import pytest

from repro.ahb.half_bus import NeededFields
from repro.core.modes import (
    AutoModePolicy,
    ConservativePolicy,
    OperatingMode,
    StaticLeaderPolicy,
    policy_for_mode,
)
from repro.sim.component import Domain


def fields():
    return NeededFields(
        remote_master_ids=(1,),
        needs_remote_requests=True,
        needs_remote_address_phase=False,
        needs_remote_hwdata=False,
        needs_remote_response=False,
        response_is_read=False,
    )


def test_mode_leader_domains():
    assert OperatingMode.SLA.leader_domain is Domain.SIMULATOR
    assert OperatingMode.ALS.leader_domain is Domain.ACCELERATOR
    assert OperatingMode.CONSERVATIVE.leader_domain is None
    assert OperatingMode.AUTO.leader_domain is None


def test_mode_optimism_flag():
    assert not OperatingMode.CONSERVATIVE.is_optimistic
    assert OperatingMode.SLA.is_optimistic
    assert OperatingMode.ALS.is_optimistic
    assert OperatingMode.AUTO.is_optimistic


def test_conservative_policy_never_goes_optimistic():
    decision = ConservativePolicy().decide(fields(), fields(), True, True)
    assert not decision.optimistic


def test_static_leader_policy_follows_predictability():
    policy = StaticLeaderPolicy(Domain.ACCELERATOR)
    assert policy.decide(fields(), fields(), sim_can_predict=False, acc_can_predict=True).optimistic
    blocked = policy.decide(fields(), fields(), sim_can_predict=True, acc_can_predict=False)
    assert not blocked.optimistic
    assert blocked.leader is Domain.ACCELERATOR


def test_static_sla_policy_uses_simulator_predictability():
    policy = StaticLeaderPolicy(Domain.SIMULATOR)
    decision = policy.decide(fields(), fields(), sim_can_predict=True, acc_can_predict=False)
    assert decision.optimistic and decision.leader is Domain.SIMULATOR


def test_auto_policy_prefers_preferred_domain():
    policy = AutoModePolicy(prefer=Domain.ACCELERATOR)
    decision = policy.decide(fields(), fields(), sim_can_predict=True, acc_can_predict=True)
    assert decision.leader is Domain.ACCELERATOR
    decision = policy.decide(fields(), fields(), sim_can_predict=True, acc_can_predict=False)
    assert decision.leader is Domain.SIMULATOR
    decision = policy.decide(fields(), fields(), sim_can_predict=False, acc_can_predict=False)
    assert not decision.optimistic


def test_auto_policy_can_prefer_simulator():
    policy = AutoModePolicy(prefer=Domain.SIMULATOR)
    decision = policy.decide(fields(), fields(), sim_can_predict=True, acc_can_predict=True)
    assert decision.leader is Domain.SIMULATOR


def test_policy_factory_maps_modes_to_policies():
    assert isinstance(policy_for_mode(OperatingMode.CONSERVATIVE), ConservativePolicy)
    assert isinstance(policy_for_mode(OperatingMode.SLA), StaticLeaderPolicy)
    assert isinstance(policy_for_mode(OperatingMode.ALS), StaticLeaderPolicy)
    assert isinstance(policy_for_mode(OperatingMode.AUTO), AutoModePolicy)
    assert policy_for_mode(OperatingMode.SLA).leader is Domain.SIMULATOR
    assert policy_for_mode(OperatingMode.ALS).leader is Domain.ACCELERATOR
