"""Unit tests for operating modes and mode policies."""

from __future__ import annotations

from repro.core.modes import (
    AutoModePolicy,
    ConservativePolicy,
    OperatingMode,
    StaticLeaderPolicy,
    policy_for_mode,
)
from repro.core.topology import DomainKind, DomainSpec, Topology
from repro.sim.component import Domain


def candidates(sim_can_predict: bool, acc_can_predict: bool):
    """Canonical-pair predictability mapping, in topology order."""
    return {
        Domain.SIMULATOR: sim_can_predict,
        Domain.ACCELERATOR: acc_can_predict,
    }


def test_mode_leader_domains():
    assert OperatingMode.SLA.leader_domain is Domain.SIMULATOR
    assert OperatingMode.ALS.leader_domain is Domain.ACCELERATOR
    assert OperatingMode.CONSERVATIVE.leader_domain is None
    assert OperatingMode.AUTO.leader_domain is None


def test_mode_optimism_flag():
    assert not OperatingMode.CONSERVATIVE.is_optimistic
    assert OperatingMode.SLA.is_optimistic
    assert OperatingMode.ALS.is_optimistic
    assert OperatingMode.AUTO.is_optimistic


def test_conservative_policy_never_goes_optimistic():
    decision = ConservativePolicy().decide(candidates(True, True))
    assert not decision.optimistic


def test_static_leader_policy_follows_predictability():
    policy = StaticLeaderPolicy(Domain.ACCELERATOR)
    assert policy.decide(candidates(False, True)).optimistic
    blocked = policy.decide(candidates(True, False))
    assert not blocked.optimistic
    assert blocked.leader is Domain.ACCELERATOR


def test_static_sla_policy_uses_simulator_predictability():
    policy = StaticLeaderPolicy(Domain.SIMULATOR)
    decision = policy.decide(candidates(True, False))
    assert decision.optimistic and decision.leader is Domain.SIMULATOR


def test_static_leader_absent_from_topology_degrades_to_conservative():
    policy = StaticLeaderPolicy(Domain.ACCELERATOR)
    decision = policy.decide({Domain.SIMULATOR: True})
    assert not decision.optimistic
    assert "not part of this topology" in decision.reason


def test_auto_policy_prefers_preferred_domain():
    policy = AutoModePolicy(prefer=Domain.ACCELERATOR)
    decision = policy.decide(candidates(True, True))
    assert decision.leader is Domain.ACCELERATOR
    decision = policy.decide(candidates(True, False))
    assert decision.leader is Domain.SIMULATOR
    decision = policy.decide(candidates(False, False))
    assert not decision.optimistic


def test_auto_policy_can_prefer_simulator():
    policy = AutoModePolicy(prefer=Domain.SIMULATOR)
    decision = policy.decide(candidates(True, True))
    assert decision.leader is Domain.SIMULATOR


def test_auto_policy_multi_domain_falls_through_in_topology_order():
    acc0, acc1 = Domain("acc0"), Domain("acc1")
    policy = AutoModePolicy(prefer=acc0)
    ordered = {Domain.SIMULATOR: False, acc0: False, acc1: True}
    decision = policy.decide(ordered)
    assert decision.optimistic and decision.leader is acc1


def test_auto_policy_data_flow_source_leads():
    """The paper's rule: lead with the domain holding the data-flow source.

    The predictors encode it as predictability -- the domain hosting the
    non-predictable data source is exactly the one whose *lagger* traffic is
    predictable -- so whichever single domain can predict must be chosen,
    regardless of preference order.
    """
    for prefer in (Domain.ACCELERATOR, Domain.SIMULATOR):
        policy = AutoModePolicy(prefer=prefer)
        # data-flow source in the accelerator: only the accelerator can lead
        decision = policy.decide(candidates(False, True))
        assert decision.optimistic and decision.leader is Domain.ACCELERATOR
        # data-flow source in the simulator: only the simulator can lead
        decision = policy.decide(candidates(True, False))
        assert decision.optimistic and decision.leader is Domain.SIMULATOR


def test_auto_policy_conservative_fallback_reason():
    decision = AutoModePolicy().decide(candidates(False, False))
    assert not decision.optimistic
    assert decision.leader is None
    assert "neither" in decision.reason


def test_auto_mode_engine_leads_with_the_data_flow_source():
    """Cycle-by-cycle AUTO decisions on real SoCs: the engine must lead with
    the accelerator on the ALS-friendly SoC and with the simulator on the
    SLA-friendly one, matching the statically configured optimum."""
    from repro.analysis.sweep import run_engine
    from repro.core import CoEmulationConfig
    from repro.workloads import als_streaming_soc, sla_streaming_soc

    for spec, expected_leader in (
        (als_streaming_soc(n_bursts=6), Domain.ACCELERATOR),
        (sla_streaming_soc(n_bursts=6), Domain.SIMULATOR),
    ):
        result = run_engine(spec, CoEmulationConfig(mode=OperatingMode.AUTO, total_cycles=200))
        leaders = result.transitions["leaders_used"]
        assert leaders, f"AUTO never went optimistic on {spec.name}"
        dominant = max(leaders, key=leaders.get)
        assert dominant == expected_leader.value, (spec.name, leaders)


def test_auto_mode_engine_falls_back_to_conservative_cycles():
    """On the bidirectional SoC the AUTO policy cannot always predict; the
    engine must degrade to conservative cycles instead of mispredicting, and
    still commit identical bus traffic."""
    from repro.analysis.sweep import run_engine
    from repro.core import CoEmulationConfig
    from repro.workloads import mixed_soc

    auto = run_engine(
        mixed_soc(n_transactions=16),
        CoEmulationConfig(mode=OperatingMode.AUTO, total_cycles=200),
    )
    conservative = run_engine(
        mixed_soc(n_transactions=16),
        CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=200),
    )
    assert auto.transitions["conservative_cycles"] > 0
    assert auto.sim_beat_keys == conservative.sim_beat_keys


def test_policy_factory_maps_modes_to_policies():
    assert isinstance(policy_for_mode(OperatingMode.CONSERVATIVE), ConservativePolicy)
    assert isinstance(policy_for_mode(OperatingMode.SLA), StaticLeaderPolicy)
    assert isinstance(policy_for_mode(OperatingMode.ALS), StaticLeaderPolicy)
    assert isinstance(policy_for_mode(OperatingMode.AUTO), AutoModePolicy)
    assert policy_for_mode(OperatingMode.SLA).leader is Domain.SIMULATOR
    assert policy_for_mode(OperatingMode.ALS).leader is Domain.ACCELERATOR


def test_policy_factory_resolves_leaders_by_kind_from_topology():
    topology = Topology(
        domains=(
            DomainSpec(domain=Domain.SIMULATOR, kind=DomainKind.SIMULATOR),
            DomainSpec(domain=Domain("acc0"), kind=DomainKind.ACCELERATOR),
            DomainSpec(domain=Domain("acc1"), kind=DomainKind.ACCELERATOR),
        )
    )
    assert policy_for_mode(OperatingMode.ALS, topology=topology).leader is Domain("acc0")
    assert policy_for_mode(OperatingMode.SLA, topology=topology).leader is Domain.SIMULATOR
    assert policy_for_mode(OperatingMode.AUTO, topology=topology).prefer is Domain("acc0")
