"""Multi-domain topology integration tests.

Covers the acceptance criteria of the topology refactor:

* the canonical two-domain topology routed through ``build_partition`` /
  ``create_engine(partition=...)`` is byte-identical to the historical
  ``build_split`` + positional-constructor path,
* the new multi-domain scenarios run under every relevant mode and stay
  functionally equivalent (the catalog equivalence test sweeps them too),
* per-domain ledger buckets and utilisation metrics,
* run-request topology overrides (serialisation, id stability),
* registry error reporting for unknown modes.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.analysis.metrics import per_domain_utilisation
from repro.core import (
    CoEmulationConfig,
    ConventionalCoEmulation,
    DomainKind,
    DomainSpec,
    EngineRegistryError,
    OperatingMode,
    OptimisticCoEmulation,
    Topology,
    create_engine,
)
from repro.core.engine import _MODE_INDEX
from repro.orchestration import RunRequest, execute_request
from repro.sim.component import Domain
from repro.sim.time_model import DomainSpeed
from repro.workloads import build_scenario
from repro.workloads.catalog import (
    accelerator_farm_4x_soc,
    dual_accelerator_pipeline_soc,
    sim_only_baseline_soc,
)


def result_digest(result) -> str:
    payload = repr(
        (
            sorted(result.domain_beat_keys.items()),
            result.committed_cycles,
            result.transitions,
            result.prediction,
            {k: repr(v) for k, v in result.per_cycle_times.items()},
            repr(result.total_modelled_time),
            result.channel.get("accesses"),
            result.channel.get("words"),
            repr(result.channel.get("total_time")),
            result.wasted_leader_cycles,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@pytest.mark.parametrize("mode", [OperatingMode.CONSERVATIVE, OperatingMode.ALS])
@pytest.mark.parametrize("scenario", ["als_streaming", "mixed"])
def test_partition_path_is_byte_identical_to_legacy_split(scenario, mode):
    """Golden equivalence: the topology-aware partition path reproduces the
    legacy two-positional path bit for bit, including an explicit canonical
    topology on the config."""
    spec_a = build_scenario(scenario)
    sim_hbm, acc_hbm, _ = spec_a.build_split()
    config = CoEmulationConfig(mode=mode, total_cycles=300)
    if mode is OperatingMode.CONSERVATIVE:
        legacy = ConventionalCoEmulation(sim_hbm, acc_hbm, config).run()
    else:
        legacy = OptimisticCoEmulation(sim_hbm, acc_hbm, config).run()

    spec_b = build_scenario(scenario)
    explicit = CoEmulationConfig(
        mode=mode, total_cycles=300, topology=Topology.canonical_pair()
    )
    modern = create_engine(explicit, partition=spec_b.build_partition()).run()
    assert result_digest(modern) == result_digest(legacy)
    assert modern.sim_beat_keys == legacy.sim_beat_keys
    assert modern.acc_beat_keys == legacy.acc_beat_keys


def run_scenario(spec, mode: OperatingMode, cycles: int = 300, **config_kwargs):
    config = CoEmulationConfig(
        mode=mode, total_cycles=cycles, topology=spec.topology, **config_kwargs
    )
    return create_engine(config, partition=spec.build_partition()).run()


def test_dual_accelerator_pipeline_goes_optimistic_with_acc0_leading():
    result = run_scenario(dual_accelerator_pipeline_soc(), OperatingMode.ALS)
    assert result.transitions["transitions"] > 0
    assert set(result.transitions["leaders_used"]) == {"acc0"}
    assert result.monitors_ok
    # accelerator-to-accelerator traffic actually happened
    assert len(result.domain_beat_keys["acc1"]) > 0
    conservative = run_scenario(dual_accelerator_pipeline_soc(), OperatingMode.CONSERVATIVE)
    assert result.domain_beat_keys == conservative.domain_beat_keys
    assert result.performance_cycles_per_second > conservative.performance_cycles_per_second


def test_accelerator_farm_runs_n_way_lock_step_and_stays_equivalent():
    als = run_scenario(accelerator_farm_4x_soc(), OperatingMode.ALS)
    conservative = run_scenario(accelerator_farm_4x_soc(), OperatingMode.CONSERVATIVE)
    assert als.domain_beat_keys == conservative.domain_beat_keys
    assert set(als.domain_beat_keys) == {"simulator", "acc0", "acc1", "acc2", "acc3"}
    # With the activity gate (default) only active pairs exchange anything,
    # so the traffic is strictly below the one-access-per-ordered-pair
    # ceiling of the unconditional scheme.
    assert conservative.channel["accesses"] < 20 * conservative.committed_cycles
    assert "per_channel" in conservative.channel
    assert len(conservative.channel["per_channel"]) == 10  # C(5, 2) links


def test_accelerator_farm_ungated_pays_one_access_per_ordered_pair():
    """sync_gating=False restores the unconditional per-pair exchange: one
    access per ordered pair per cycle (N * (N-1) = 20), against 2 in the
    two-domain world -- and the functional result is identical either way."""
    gated = run_scenario(accelerator_farm_4x_soc(), OperatingMode.CONSERVATIVE)
    ungated = run_scenario(
        accelerator_farm_4x_soc(), OperatingMode.CONSERVATIVE, sync_gating=False
    )
    assert ungated.channel["accesses"] == 20 * ungated.committed_cycles
    assert gated.channel["accesses"] < ungated.channel["accesses"]
    assert gated.domain_beat_keys == ungated.domain_beat_keys
    assert gated.committed_cycles == ungated.committed_cycles


def test_star_topology_relays_leaf_to_leaf_traffic_through_the_hub():
    """A hub-and-spoke farm is runnable: pairs without a direct channel pay
    one access per hop through the hub, and functional behaviour matches the
    full-mesh run exactly."""
    star = Topology.star(
        DomainSpec(Domain.SIMULATOR, DomainKind.SIMULATOR),
        [
            DomainSpec(Domain("acc0"), DomainKind.ACCELERATOR),
            DomainSpec(Domain("acc1"), DomainKind.ACCELERATOR),
        ],
    )
    results = {}
    for label, topology in (("mesh", None), ("star", star)):
        spec = accelerator_farm_4x_soc(n_accelerators=2)
        config = CoEmulationConfig(
            mode=OperatingMode.CONSERVATIVE,
            total_cycles=200,
            topology=topology or spec.topology,
            sync_gating=False,  # pin the unconditional per-pair accounting
        )
        partition = spec.build_partition(config.resolve_topology())
        results[label] = create_engine(config, partition=partition).run()
    assert results["star"].domain_beat_keys == results["mesh"].domain_beat_keys
    # mesh: 6 ordered pairs = 6 accesses/cycle; star: the 2 leaf-to-leaf
    # pairs relay over 2 hops each = 8 accesses/cycle.
    assert results["mesh"].channel["accesses"] == 6 * 200
    assert results["star"].channel["accesses"] == 8 * 200
    assert len(results["star"].channel["per_channel"]) == 2  # hub links only
    # ALS over the star stays functionally equivalent too
    spec = accelerator_farm_4x_soc(n_accelerators=2)
    als = create_engine(
        CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=200, topology=star),
        partition=spec.build_partition(star),
    ).run()
    assert als.domain_beat_keys == results["mesh"].domain_beat_keys


def test_sim_only_baseline_never_touches_a_channel():
    for mode in (OperatingMode.CONSERVATIVE, OperatingMode.ALS, OperatingMode.AUTO):
        result = run_scenario(sim_only_baseline_soc(), mode, cycles=200)
        assert result.channel["accesses"] == 0
        assert result.committed_cycles == 200
        assert result.performance_cycles_per_second == pytest.approx(1_000_000.0)


def test_per_domain_ledger_buckets_and_utilisation():
    result = run_scenario(dual_accelerator_pipeline_soc(), OperatingMode.CONSERVATIVE)
    assert result.per_cycle_times["acc0"] > 0
    assert result.per_cycle_times["acc1"] > 0
    shares = per_domain_utilisation(result.per_cycle_times)
    assert {"simulator", "acc0", "acc1"} <= set(shares)
    assert all(0.0 <= share <= 1.0 for share in shares.values())
    assert sum(shares.values()) < 1.0  # the rest is channel + checkpoint overhead


def test_per_domain_speed_override_through_the_topology():
    fast = Topology(
        domains=(
            DomainSpec(Domain.SIMULATOR, DomainKind.SIMULATOR),
            DomainSpec(Domain.ACCELERATOR, DomainKind.ACCELERATOR),
        )
    )
    spec = build_scenario("single_master")
    baseline = create_engine(
        CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=100, topology=fast),
        partition=spec.build_partition(),
    ).run()
    slow = Topology(
        domains=(
            DomainSpec(Domain.SIMULATOR, DomainKind.SIMULATOR, speed=DomainSpeed(1_000.0)),
            DomainSpec(Domain.ACCELERATOR, DomainKind.ACCELERATOR),
        )
    )
    throttled = create_engine(
        CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=100, topology=slow),
        partition=build_scenario("single_master").build_partition(),
    ).run()
    assert throttled.per_cycle_times["simulator"] > baseline.per_cycle_times["simulator"]


# ---------------------------------------------------------------------------
# Run-request topology overrides.
# ---------------------------------------------------------------------------


def test_request_payload_omits_topology_when_unset():
    request = RunRequest(scenario="als_streaming", mode="als", cycles=50)
    assert "topology" not in request.as_dict()
    overridden = RunRequest(
        scenario="als_streaming",
        mode="als",
        cycles=50,
        topology=Topology.canonical_pair().as_dict(),
    )
    assert "topology" in overridden.as_dict()
    assert overridden.request_id != request.request_id


def test_execute_request_uses_scenario_topology_and_override():
    record = execute_request(
        RunRequest(scenario="dual_accelerator_pipeline", mode="als", cycles=120)
    )
    assert record.per_cycle_times["acc0"] > 0
    assert record.monitors_ok
    # explicit override: run the canonical-pair scenario on a custom topology
    # with a renamed accelerator domain
    custom = Topology(
        domains=(
            DomainSpec(Domain.SIMULATOR, DomainKind.SIMULATOR),
            DomainSpec(Domain.ACCELERATOR, DomainKind.ACCELERATOR),
        )
    ).as_dict()
    record = execute_request(
        RunRequest(scenario="single_master", mode="als", cycles=80, topology=custom)
    )
    assert record.committed_cycles == 80


def test_multidomain_requests_roundtrip_through_pickle():
    """Requests must stay picklable (multiprocessing fan-out) with topologies."""
    import pickle

    request = RunRequest(
        scenario="accelerator_farm_4x",
        mode="conservative",
        cycles=60,
        topology=build_scenario("accelerator_farm_4x").topology.as_dict(),
    )
    clone = pickle.loads(pickle.dumps(request))
    assert clone.request_id == request.request_id
    record_a = execute_request(request)
    record_b = execute_request(clone)
    assert record_a.digest == record_b.digest


# ---------------------------------------------------------------------------
# Registry error reporting.
# ---------------------------------------------------------------------------


def test_create_engine_unknown_mode_lists_registered_engines(monkeypatch):
    config = CoEmulationConfig(mode=OperatingMode.AUTO, total_cycles=10)
    monkeypatch.delitem(_MODE_INDEX, OperatingMode.AUTO)
    spec = build_scenario("single_master")
    with pytest.raises(EngineRegistryError) as excinfo:
        create_engine(config, partition=spec.build_partition())
    message = str(excinfo.value)
    assert "no engine registered for operating mode 'auto'" in message
    assert "conventional (conservative)" in message
    assert "optimistic (sla, als" in message
    assert "analytical (no modes" in message


def test_engine_rejects_partition_topology_mismatch():
    spec = build_scenario("dual_accelerator_pipeline")
    partition = spec.build_partition()
    config = CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=10)
    with pytest.raises(ValueError, match="do not match"):
        ConventionalCoEmulation(partition, config)  # canonical topology, 3-domain partition
