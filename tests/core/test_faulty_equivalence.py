"""Faults must never change *what* ran -- only how long it took.

The central acceptance criterion of the imperfect-channel layer: because the
reliability protocol delivers every frame exactly once and in order (or gives
up with a structured error), the committed beat stream of a faulty run is
bit-identical to the ideal-channel run for any seed.  Only the modelled times
(and the fault counters) differ.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.channel.faults import ChannelDegradedError, ChannelFaultConfig
from repro.core.coemulation import CoEmulationConfig
from repro.core.modes import OperatingMode
from repro.orchestration.request import RunRequest, execute_request
from repro.workloads.catalog import build_scenario

FAULTY_SCENARIOS = ["lossy_streaming", "bursty_link_mixed", "degraded_pipeline"]
MODES = ["conservative", "als"]

#: All-zero override: forces the ideal channel even on a scenario whose spec
#: declares default faults (prepare_run's explicit-override-wins rule).
IDEAL_OVERRIDE = ChannelFaultConfig().as_dict()


@pytest.mark.parametrize("scenario", FAULTY_SCENARIOS)
@pytest.mark.parametrize("mode", MODES)
def test_faulty_run_commits_identical_beats_to_ideal(scenario, mode):
    faulty = execute_request(RunRequest(scenario=scenario, mode=mode, cycles=150))
    ideal = execute_request(
        RunRequest(
            scenario=scenario, mode=mode, cycles=150, channel_faults=IDEAL_OVERRIDE
        )
    )
    assert faulty.beat_digest == ideal.beat_digest
    assert faulty.committed_cycles == ideal.committed_cycles == 150
    assert faulty.monitors_ok and ideal.monitors_ok
    # ... but the channel was not free: the faulty run is strictly slower and
    # carries fault counters the ideal run does not.
    assert faulty.performance < ideal.performance
    assert faulty.channel.get("faults") is not None
    assert ideal.channel.get("faults") is None


@pytest.mark.parametrize("scenario", FAULTY_SCENARIOS)
def test_faulty_run_is_deterministic(scenario):
    request = RunRequest(scenario=scenario, mode="als", cycles=120)
    first = execute_request(request)
    second = execute_request(request)
    assert first.digest == second.digest
    assert first.channel["faults"] == second.channel["faults"]


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_any_fault_seed_preserves_the_beat_digest(seed):
    """The invariant is seed-independent: vary the fault schedule freely."""
    faults = ChannelFaultConfig(
        loss_rate=0.05, duplicate_rate=0.05, corruption_rate=0.02,
        reorder_rate=0.05, max_attempts=20, seed=seed,
    )
    faulty = execute_request(
        RunRequest(
            scenario="mixed", mode="als", cycles=120, channel_faults=faults.as_dict()
        )
    )
    ideal = execute_request(RunRequest(scenario="mixed", mode="als", cycles=120))
    assert faulty.beat_digest == ideal.beat_digest


@pytest.mark.parametrize("mode", [OperatingMode.CONSERVATIVE, OperatingMode.ALS])
def test_dead_link_raises_structured_give_up(mode):
    spec = build_scenario("mixed")
    config, partition = spec.prepare_run(
        CoEmulationConfig(
            mode=mode,
            total_cycles=100,
            channel_faults=ChannelFaultConfig(loss_rate=1.0, max_attempts=3),
        )
    )
    from repro.core.engine import create_engine

    with pytest.raises(ChannelDegradedError) as excinfo:
        create_engine(config, partition=partition).run()
    assert excinfo.value.limit == 3
    assert excinfo.value.attempts == 3


def test_explicit_ideal_override_disables_scenario_faults():
    spec = build_scenario("lossy_streaming")
    assert spec.channel_faults is not None and not spec.channel_faults.is_ideal
    config, _ = spec.prepare_run(
        CoEmulationConfig(total_cycles=50, channel_faults=ChannelFaultConfig())
    )
    assert config.channel_faults is not None
    assert config.channel_faults.is_ideal


def test_scenario_default_faults_flow_into_config():
    spec = build_scenario("lossy_streaming")
    config, _ = spec.prepare_run(CoEmulationConfig(total_cycles=50))
    assert config.channel_faults == spec.channel_faults


def test_loss_rate_zero_with_other_knobs_still_perturbs_timing_only():
    base = replace(build_scenario("bursty_link_mixed").channel_faults, loss_rate=0.0)
    faulty = execute_request(
        RunRequest(
            scenario="mixed", mode="conservative", cycles=100,
            channel_faults=base.as_dict(),
        )
    )
    ideal = execute_request(
        RunRequest(scenario="mixed", mode="conservative", cycles=100)
    )
    assert faulty.beat_digest == ideal.beat_digest
