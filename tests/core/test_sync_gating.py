"""Activity-gated multi-domain synchronisation: equivalence and traffic.

The sync gate (``CoEmulationConfig.sync_gating``) changes only the modelled
channel accounting and the host-side bookkeeping of N>2-domain runs:

* functional behaviour (beat streams, transitions, prediction statistics)
  must be identical with the gate on or off for **every** catalog scenario,
* two-domain (and single-domain) runs must be *bit-identical* in every
  respect -- the gate must not touch the paper's canonical topologies,
* gated traffic must never exceed the unconditional per-ordered-pair scheme,
  and quiet domains must appear as lookahead promises, not per-cycle data.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core import CoEmulationConfig, OperatingMode, create_engine
from repro.workloads.catalog import build_scenario, scenario_names

MODES = (OperatingMode.CONSERVATIVE, OperatingMode.ALS)


def run_gated(name: str, mode: OperatingMode, sync_gating: bool, cycles: int = 200):
    spec = build_scenario(name)
    config = CoEmulationConfig(
        mode=mode,
        total_cycles=cycles,
        topology=spec.topology,
        sync_gating=sync_gating,
    )
    return create_engine(config, partition=spec.build_partition()).run()


def functional_digest(result) -> str:
    """Everything the gate must not change, for any domain count."""
    payload = repr(
        (
            sorted(result.domain_beat_keys.items()),
            result.committed_cycles,
            result.transitions,
            result.prediction,
            result.monitors_ok,
            result.wasted_leader_cycles,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def full_digest(result) -> str:
    """Functional digest plus every modelled quantity (times, traffic)."""
    payload = repr(
        (
            sorted(result.domain_beat_keys.items()),
            result.committed_cycles,
            result.transitions,
            result.prediction,
            {k: repr(v) for k, v in result.per_cycle_times.items()},
            repr(result.total_modelled_time),
            result.channel.get("accesses"),
            result.channel.get("words"),
            repr(result.channel.get("total_time")),
            result.wasted_leader_cycles,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", scenario_names())
def test_gating_preserves_functional_behaviour_for_every_catalog_scenario(name, mode):
    gated = run_gated(name, mode, sync_gating=True)
    ungated = run_gated(name, mode, sync_gating=False)
    assert functional_digest(gated) == functional_digest(ungated)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize(
    "name",
    [
        name
        for name in scenario_names()
        if build_scenario(name).resolved_topology().n_domains <= 2
    ],
)
def test_gating_is_a_strict_noop_for_one_and_two_domain_scenarios(name, mode):
    """The paper's canonical topologies keep every modelled quantity
    bit-identical regardless of the gate flag."""
    gated = run_gated(name, mode, sync_gating=True)
    ungated = run_gated(name, mode, sync_gating=False)
    assert full_digest(gated) == full_digest(ungated)


@pytest.mark.parametrize("mode", MODES)
def test_gated_traffic_never_exceeds_the_unconditional_scheme(mode):
    for name in ("accelerator_farm_4x", "dual_accelerator_pipeline"):
        gated = run_gated(name, mode, sync_gating=True)
        ungated = run_gated(name, mode, sync_gating=False)
        assert gated.channel["accesses"] <= ungated.channel["accesses"]
        assert gated.channel["total_time"] <= ungated.channel["total_time"]


def test_quiet_domains_advertise_lookahead_promises():
    """A drained farm shows up as a handful of one-word sync promises
    instead of a per-cycle null-message storm."""
    result = run_gated("accelerator_farm_4x", OperatingMode.CONSERVATIVE, True, cycles=400)
    per_purpose = result.channel["per_purpose"]
    assert per_purpose.get("sync_promise", 0) > 0
    # Far fewer promises than quiet pair-cycles (the whole point of the
    # infinite-lookahead promise).
    assert per_purpose["sync_promise"] < 20 * result.committed_cycles / 4


def test_multidomain_followup_exchange_is_batched_per_transition():
    """With gating on, the lagger-to-lagger follow-up exchange pays at most
    one access per ordered lagger pair per transition (a burst), not one per
    replayed cycle."""
    gated = run_gated("accelerator_farm_4x", OperatingMode.ALS, True, cycles=400)
    transitions = gated.transitions["transitions"]
    exchanges = gated.channel["per_purpose"].get("followup_exchange", 0)
    if transitions:
        # 4 laggers -> at most 12 ordered pairs per transition.
        assert exchanges <= 12 * transitions
