"""Unit tests for the Leader Output Buffer."""

from __future__ import annotations

import pytest

from repro.ahb.half_bus import BoundaryDrive
from repro.core.lob import LeaderOutputBuffer, LobEntry, LobError
from repro.core.prediction import PredictionRecord


def entry(cycle=0, with_prediction=True):
    return LobEntry(
        cycle=cycle,
        leader_drive=BoundaryDrive(cycle=cycle, requests={0: True}),
        leader_response=None,
        prediction=PredictionRecord(cycle=cycle, requests={1: False}) if with_prediction else None,
    )


def test_depth_must_be_positive():
    with pytest.raises(LobError):
        LeaderOutputBuffer(0)


def test_push_until_full_then_overflow_raises():
    lob = LeaderOutputBuffer(3)
    for cycle in range(3):
        lob.push(entry(cycle))
    assert lob.full
    with pytest.raises(LobError):
        lob.push(entry(3))


def test_flush_returns_entries_in_order_and_empties_buffer():
    lob = LeaderOutputBuffer(8)
    for cycle in range(5):
        lob.push(entry(cycle))
    flushed = lob.flush()
    assert [e.cycle for e in flushed] == [0, 1, 2, 3, 4]
    assert lob.empty
    assert lob.stats.flushes == 1
    assert lob.stats.entries_flushed == 5
    assert lob.stats.occupancy_at_flush == [5]


def test_invalidate_drops_entries_without_flushing():
    lob = LeaderOutputBuffer(4)
    lob.push(entry(0))
    lob.push(entry(1))
    dropped = lob.invalidate()
    assert dropped == 2
    assert lob.empty
    assert lob.stats.entries_invalidated == 2
    assert lob.stats.flushes == 0


def test_occupancy_statistics():
    lob = LeaderOutputBuffer(8)
    for cycle in range(6):
        lob.push(entry(cycle))
    lob.flush()
    lob.push(entry(10))
    lob.flush()
    assert lob.stats.max_occupancy_seen == 6
    assert lob.stats.mean_flush_occupancy() == pytest.approx(3.5)
    assert lob.stats.entries_pushed == 7


def test_entries_property_returns_copy():
    lob = LeaderOutputBuffer(4)
    lob.push(entry(0))
    entries = lob.entries
    entries.clear()
    assert len(lob) == 1


def test_last_entry_may_carry_no_prediction():
    """The paper: the last leader-to-lagger datum carries no prediction, which
    is how the lagger recognises the end of the burst."""
    lob = LeaderOutputBuffer(4)
    lob.push(entry(0, with_prediction=True))
    lob.push(entry(1, with_prediction=False))
    flushed = lob.flush()
    assert flushed[0].has_prediction
    assert not flushed[-1].has_prediction


def test_reset_clears_entries_and_stats():
    lob = LeaderOutputBuffer(4)
    lob.push(entry(0))
    lob.flush()
    lob.reset()
    assert lob.empty
    assert lob.stats.flushes == 0
    assert lob.stats.entries_pushed == 0
