"""Tests of the conventional (lock-step) co-emulation engine."""

from __future__ import annotations

import pytest

from repro.core import (
    CoEmulationConfig,
    ConventionalCoEmulation,
    OperatingMode,
    conventional_performance,
)
from repro.core.analytical import AnalyticalConfig


def run_conventional(spec, cycles=200, **kwargs):
    sim_hbm, acc_hbm, masters = spec.build_split()
    config = CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=cycles, **kwargs)
    engine = ConventionalCoEmulation(sim_hbm, acc_hbm, config)
    result = engine.run()
    return result, sim_hbm, acc_hbm, masters


def test_two_channel_accesses_per_cycle(als_spec):
    result, _, _, _ = run_conventional(als_spec, cycles=150)
    assert result.committed_cycles == 150
    assert result.channel["accesses"] == 2 * 150
    assert result.channel["sim_to_acc_accesses"] == 150
    assert result.channel["acc_to_sim_accesses"] == 150


def test_performance_matches_analytical_conventional_model(als_spec):
    result, _, _, _ = run_conventional(als_spec, cycles=300)
    analytical = conventional_performance(AnalyticalConfig())
    # The mechanism-level payload sizes differ slightly from the analytical
    # 2-words-per-direction assumption, but the startup overhead dominates,
    # so the two agree within a few percent.
    assert result.performance_cycles_per_second == pytest.approx(analytical, rel=0.05)


def test_per_cycle_breakdown_matches_configuration(als_spec):
    result, _, _, _ = run_conventional(als_spec, cycles=100)
    assert result.tsim == pytest.approx(1e-6, rel=1e-6)
    assert result.tacc == pytest.approx(1e-7, rel=1e-6)
    assert result.tstore == 0.0
    assert result.trestore == 0.0
    assert result.tchannel > 2 * 12.2e-6 * 0.99


def test_workload_completes_and_monitors_stay_clean(als_spec):
    result, sim_hbm, acc_hbm, masters = run_conventional(als_spec, cycles=400)
    assert result.monitors_ok
    assert all(master.done for master in masters.values())
    assert len(result.sim_beat_keys) == len(result.acc_beat_keys) > 0


def test_stop_when_workload_done_ends_early(single_master_spec):
    result, _, _, masters = run_conventional(
        single_master_spec, cycles=5000, stop_when_workload_done=True
    )
    assert all(master.done for master in masters.values())
    assert result.committed_cycles < 5000


def test_sla_oriented_soc_also_runs_conservatively(sla_spec):
    result, _, _, masters = run_conventional(sla_spec, cycles=400)
    assert result.monitors_ok
    assert all(master.done for master in masters.values())


def test_slower_simulator_lowers_performance(als_spec):
    from repro.sim.time_model import DomainSpeed

    fast, _, _, _ = run_conventional(als_spec, cycles=100)
    slow, _, _, _ = run_conventional(
        als_spec, cycles=100, simulator_speed=DomainSpeed(100_000.0)
    )
    assert slow.performance_cycles_per_second < fast.performance_cycles_per_second
    assert slow.performance_cycles_per_second == pytest.approx(28.8e3, rel=0.05)


def test_summary_row_is_flat_and_complete(als_spec):
    result, _, _, _ = run_conventional(als_spec, cycles=50)
    row = result.summary_row()
    for key in ("mode", "cycles", "Tsim", "Tacc", "Tch", "performance", "channel_accesses"):
        assert key in row
    assert row["mode"] == "conservative"
    assert row["cycles"] == 50


def test_engine_rejects_swapped_half_bus_arguments(als_spec):
    sim_hbm, acc_hbm, _ = als_spec.build_split()
    with pytest.raises(ValueError):
        ConventionalCoEmulation(acc_hbm, sim_hbm, CoEmulationConfig(total_cycles=10))


def test_config_validation():
    with pytest.raises(ValueError):
        CoEmulationConfig(total_cycles=0)
    with pytest.raises(ValueError):
        CoEmulationConfig(lob_depth=0)
    with pytest.raises(ValueError):
        CoEmulationConfig(forced_accuracy=1.5)
