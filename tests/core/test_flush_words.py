"""The LOB flush's inlined word arithmetic must match the packetizer.

``OptimisticCoEmulation._flush_lob`` inlines
``BoundaryPacketizer.cycle_word_count``'s layout for speed (it runs once
per LOB entry on the transition hot path).  This suite pins the inline
copy to the packetizer across every field combination, so an encoding
layout change that only updates the packetizer fails here instead of
silently desynchronising the flush's channel accounting.
"""

from __future__ import annotations

import itertools

from repro.ahb.half_bus import BoundaryDrive
from repro.ahb.signals import AddressPhase, DataPhaseResult, HResp, HTrans
from repro.core import CoEmulationConfig, OperatingMode, OptimisticCoEmulation
from repro.core.lob import LobEntry
from repro.core.prediction import PredictionRecord
from repro.core.transition import TransitionLog
from repro.workloads import als_streaming_soc


def reference_words(packetizer, entries) -> int:
    """The flush size computed through the packetizer's own counters."""
    total = 0
    for entry in entries:
        total += packetizer.drive_word_count(entry.leader_drive)
        if entry.leader_response is not None:
            total += packetizer.response_word_count(entry.leader_response)
        if entry.prediction is not None:
            total += packetizer.cycle_word_count(
                address_phase=entry.prediction.address_phase,
                hwdata=entry.prediction.hwdata,
                response=entry.prediction.response,
            )
    return total


def build_engine():
    sim_hbm, acc_hbm, _ = als_streaming_soc(n_bursts=4).build_split()
    config = CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=50)
    return OptimisticCoEmulation(sim_hbm, acc_hbm, config)


def all_entry_shapes():
    """Every combination of present/absent optional fields."""
    phase = AddressPhase(master_id=0, haddr=0x100, htrans=HTrans.NONSEQ, hwrite=True)
    responses = [
        None,
        DataPhaseResult.okay(),
        DataPhaseResult.okay(hrdata=0xABC),
        DataPhaseResult(hready=False, hresp=HResp.OKAY),
    ]
    entries = []
    cycle = 0
    for drive_phase, drive_hwdata, response, with_prediction in itertools.product(
        (None, phase), (None, 0x1234), responses, (False, True)
    ):
        for pred_phase, pred_hwdata, pred_response in itertools.product(
            (None, phase), (None, 0x9), (None, DataPhaseResult.okay(hrdata=7))
        ):
            prediction = (
                PredictionRecord(
                    cycle=cycle,
                    requests={1: True},
                    address_phase=pred_phase,
                    hwdata=pred_hwdata,
                    response=pred_response,
                )
                if with_prediction
                else None
            )
            entries.append(
                LobEntry(
                    cycle=cycle,
                    leader_drive=BoundaryDrive(
                        cycle=cycle,
                        requests={0: True},
                        address_phase=drive_phase,
                        hwdata=drive_hwdata,
                    ),
                    leader_response=response,
                    prediction=prediction,
                )
            )
            cycle += 1
    return entries


def test_inline_flush_word_arithmetic_matches_the_packetizer():
    engine = build_engine()
    entries = all_entry_shapes()
    leader = engine.acc_host
    laggers = [engine.sim_host]
    record = TransitionLog().new_record(leader.domain, 0)
    flushed = engine._flush_lob(leader, laggers, entries, record)
    assert flushed == reference_words(engine.packetizer, entries)


def test_inline_flush_matches_packetizer_per_single_entry():
    """Pin every shape individually so a mismatch names the offender."""
    engine = build_engine()
    leader = engine.acc_host
    laggers = [engine.sim_host]
    log = TransitionLog()
    for entry in all_entry_shapes():
        record = log.new_record(leader.domain, entry.cycle)
        flushed = engine._flush_lob(leader, laggers, [entry], record)
        expected = reference_words(engine.packetizer, [entry])
        assert flushed == expected, f"mismatch for {entry!r}"
