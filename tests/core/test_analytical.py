"""Unit tests for the closed-form analytical performance model."""

from __future__ import annotations

import pytest

from repro.core.analytical import (
    AnalyticalConfig,
    PAPER_TABLE2,
    TABLE2_ACCURACIES,
    accuracy_sweep,
    breakeven_accuracy,
    conventional_performance,
    estimate_performance,
    expected_committed_per_transition,
    expected_rollforth_per_transition,
    failure_probability,
    figure4,
    sla_summary,
    table2,
)
from repro.core.modes import OperatingMode


class TestTransitionExpectations:
    def test_perfect_accuracy_commits_full_lob(self):
        assert expected_committed_per_transition(1.0, 64) == 64.0
        assert expected_rollforth_per_transition(1.0, 64) == 0.0
        assert failure_probability(1.0, 64) == 0.0

    def test_low_accuracy_commits_about_one_cycle(self):
        committed = expected_committed_per_transition(0.1, 64)
        assert 1.0 < committed < 1.2

    def test_committed_is_monotone_in_accuracy(self):
        values = [expected_committed_per_transition(p, 64) for p in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert values == sorted(values)

    def test_committed_bounded_by_lob_depth(self):
        for depth in (1, 8, 64):
            for p in (0.05, 0.5, 0.95, 1.0):
                assert 0 < expected_committed_per_transition(p, depth) <= depth

    def test_geometric_limit_without_cap(self):
        # With a huge LOB the expectation approaches 1 / (1 - p).
        assert expected_committed_per_transition(0.9, 10_000) == pytest.approx(10.0, rel=1e-6)


class TestConventionalBaseline:
    def test_reproduces_paper_conventional_numbers(self):
        fast = conventional_performance(AnalyticalConfig())
        slow = conventional_performance(
            AnalyticalConfig(simulator_cycles_per_second=100_000.0)
        )
        assert fast == pytest.approx(38.9e3, rel=0.02)
        assert slow == pytest.approx(28.8e3, rel=0.02)

    def test_conventional_is_channel_dominated(self):
        config = AnalyticalConfig()
        total = 1.0 / conventional_performance(config)
        channel_share = (2 * config.channel.startup_overhead) / total
        assert channel_share > 0.9


class TestAnalyticalConfig:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AnalyticalConfig(prediction_accuracy=0.0)
        with pytest.raises(ValueError):
            AnalyticalConfig(prediction_accuracy=1.5)
        with pytest.raises(ValueError):
            AnalyticalConfig(lob_depth=0)
        with pytest.raises(ValueError):
            AnalyticalConfig(mode=OperatingMode.CONSERVATIVE)

    def test_with_accuracy_returns_modified_copy(self):
        config = AnalyticalConfig()
        other = config.with_accuracy(0.5)
        assert other.prediction_accuracy == 0.5
        assert config.prediction_accuracy == 1.0


class TestAlsEstimates:
    def test_perfect_accuracy_gain_matches_paper_headline(self):
        estimate = estimate_performance(AnalyticalConfig(prediction_accuracy=1.0))
        # Paper: 16.75x ("1500%" in the abstract); the reproduction is within 5%.
        assert estimate.ratio == pytest.approx(16.75, rel=0.05)
        assert estimate.performance == pytest.approx(652e3, rel=0.05)

    def test_tacc_equals_raw_accelerator_time_at_perfect_accuracy(self):
        estimate = estimate_performance(AnalyticalConfig(prediction_accuracy=1.0))
        assert estimate.t_acc == pytest.approx(1e-7)
        assert estimate.t_restore == 0.0
        assert estimate.t_sim == pytest.approx(1e-6)

    def test_performance_decreases_monotonically_with_accuracy(self):
        estimates = table2()
        performances = [e.performance for e in estimates]
        assert performances == sorted(performances, reverse=True)

    def test_table2_matches_paper_within_tolerance(self):
        """Per-point comparison against the published Table 2.

        The paper's exact derivation is unpublished; our model tracks the
        published performance to within ~25 % at every accuracy point and
        within 5 % at high accuracy.
        """
        for estimate in table2():
            paper = PAPER_TABLE2[round(estimate.prediction_accuracy, 3)]
            assert estimate.performance == pytest.approx(paper["performance"], rel=0.25)
        high = estimate_performance(AnalyticalConfig(prediction_accuracy=0.99))
        assert high.performance == pytest.approx(PAPER_TABLE2[0.99]["performance"], rel=0.05)

    def test_store_and_restore_costs_match_paper_closely(self):
        for estimate in table2():
            paper = PAPER_TABLE2[round(estimate.prediction_accuracy, 3)]
            if paper["Trestore"] > 0:
                assert estimate.t_restore == pytest.approx(paper["Trestore"], rel=0.35)
            assert estimate.t_store == pytest.approx(paper["Tstore"], rel=0.35)

    def test_breakeven_accuracy_is_near_ten_percent(self):
        """Paper: ALS at 1,000 kcycles/s matches the conventional method at
        roughly 10 % accuracy (ratio 0.94 at p = 0.1)."""
        accuracy = breakeven_accuracy(AnalyticalConfig())
        assert 0.05 < accuracy < 0.35

    def test_total_per_cycle_is_sum_of_components(self):
        estimate = estimate_performance(AnalyticalConfig(prediction_accuracy=0.9))
        assert estimate.total_per_cycle == pytest.approx(1.0 / estimate.performance)


class TestSlaEstimates:
    def test_sla_max_gains_match_paper(self):
        summary = sla_summary()
        assert summary[1_000_000.0]["max_gain"] == pytest.approx(15.34, rel=0.05)
        assert summary[100_000.0]["max_gain"] == pytest.approx(3.25, rel=0.05)

    def test_sla_breakeven_ordering_matches_paper(self):
        """Paper: SLA breaks even at 98 % (100 k simulator) and 70 % (1,000 k
        simulator) -- i.e. the slower simulator tolerates far less
        misprediction.  The reproduction preserves that ordering and is in the
        right neighbourhood."""
        summary = sla_summary()
        slow = summary[100_000.0]["breakeven_accuracy"]
        fast = summary[1_000_000.0]["breakeven_accuracy"]
        assert slow > fast
        assert 0.9 < slow < 1.0
        assert 0.6 < fast < 0.9

    def test_sla_suffers_more_than_als_at_low_accuracy(self):
        als = estimate_performance(
            AnalyticalConfig(mode=OperatingMode.ALS, prediction_accuracy=0.6)
        )
        sla = estimate_performance(
            AnalyticalConfig(mode=OperatingMode.SLA, prediction_accuracy=0.6)
        )
        assert als.ratio > sla.ratio


class TestFigure4:
    def test_four_series_are_produced(self):
        series = figure4()
        assert set(series) == {
            "Sim=100k, LOBdepth=64",
            "Sim=100k, LOBdepth=8",
            "Sim=1000k, LOBdepth=64",
            "Sim=1000k, LOBdepth=8",
        }
        for estimates in series.values():
            assert len(estimates) == 13

    def test_deeper_lob_wins_at_high_accuracy_and_loses_at_low_accuracy(self):
        """Paper: LOB depth accelerates the gain when accuracy is high and
        degrades it when accuracy is low."""
        series = figure4()
        deep = {e.prediction_accuracy: e.performance for e in series["Sim=1000k, LOBdepth=64"]}
        shallow = {e.prediction_accuracy: e.performance for e in series["Sim=1000k, LOBdepth=8"]}
        assert deep[1.0] > shallow[1.0]
        assert deep[0.1] < shallow[0.1]

    def test_faster_simulator_gets_larger_gain(self):
        """Paper: 'The bigger the simulator performance gets, we get the more
        performance gain from the proposed method.'"""
        fast = estimate_performance(
            AnalyticalConfig(simulator_cycles_per_second=1_000_000.0)
        )
        slow = estimate_performance(
            AnalyticalConfig(simulator_cycles_per_second=100_000.0)
        )
        assert fast.ratio > slow.ratio

    def test_every_series_is_monotone_in_accuracy(self):
        for estimates in figure4().values():
            performances = [e.performance for e in estimates]
            assert performances == sorted(performances, reverse=True)


class TestSweepHelpers:
    def test_accuracy_sweep_returns_one_estimate_per_point(self):
        estimates = accuracy_sweep(AnalyticalConfig(), TABLE2_ACCURACIES)
        assert len(estimates) == len(TABLE2_ACCURACIES)
        assert [e.prediction_accuracy for e in estimates] == list(TABLE2_ACCURACIES)

    def test_as_dict_contains_table2_columns(self):
        payload = estimate_performance(AnalyticalConfig()).as_dict()
        for key in ("Tsim", "Tacc", "Tstore", "Trestore", "Tch", "performance", "ratio"):
            assert key in payload
