"""Integration tests: functional equivalence across system models.

The golden rule of the reproduction: splitting the SoC across the
simulator-accelerator boundary and changing the synchronisation scheme
(conservative, SLA, ALS, AUTO, any prediction accuracy) must never change the
committed bus traffic.  These tests compare the beat stream of every
configuration against the monolithic reference bus.
"""

from __future__ import annotations

import pytest

from repro.core import (
    CoEmulationConfig,
    ConventionalCoEmulation,
    OperatingMode,
    OptimisticCoEmulation,
)
from repro.sim.kernel import CycleKernel
from repro.workloads import (
    als_streaming_soc,
    mixed_soc,
    single_master_soc,
    sla_streaming_soc,
    traces_equivalent,
)


def reference_recorder(spec, cycles):
    bus, _ = spec.build_reference()
    kernel = CycleKernel("reference")
    kernel.add_component(bus)
    kernel.run(cycles)
    assert bus.monitor.ok, [str(v) for v in bus.monitor.violations]
    return bus.recorder


def split_recorders(spec, mode, cycles, **kwargs):
    sim_hbm, acc_hbm, _ = spec.build_split()
    config = CoEmulationConfig(mode=mode, total_cycles=cycles, **kwargs)
    if mode is OperatingMode.CONSERVATIVE:
        engine = ConventionalCoEmulation(sim_hbm, acc_hbm, config)
    else:
        engine = OptimisticCoEmulation(sim_hbm, acc_hbm, config)
    result = engine.run()
    assert result.monitors_ok
    return sim_hbm.recorder, acc_hbm.recorder


SPEC_FACTORIES = {
    "als_streaming": lambda: als_streaming_soc(n_bursts=10),
    "sla_streaming": lambda: sla_streaming_soc(n_bursts=10),
    "mixed": lambda: mixed_soc(n_transactions=24),
    "single_master": lambda: single_master_soc(n_bursts=8),
}


@pytest.mark.parametrize("spec_name", sorted(SPEC_FACTORIES))
def test_conventional_split_matches_reference(spec_name):
    factory = SPEC_FACTORIES[spec_name]
    cycles = 450
    reference = reference_recorder(factory(), cycles)
    sim_rec, acc_rec = split_recorders(factory(), OperatingMode.CONSERVATIVE, cycles)
    assert traces_equivalent(reference, [sim_rec, acc_rec]) is None


@pytest.mark.parametrize("spec_name", sorted(SPEC_FACTORIES))
def test_als_split_matches_reference(spec_name):
    factory = SPEC_FACTORIES[spec_name]
    cycles = 450
    reference = reference_recorder(factory(), cycles)
    sim_rec, acc_rec = split_recorders(factory(), OperatingMode.ALS, cycles)
    assert traces_equivalent(reference, [sim_rec, acc_rec]) is None


@pytest.mark.parametrize("spec_name", ["als_streaming", "sla_streaming", "mixed"])
def test_sla_split_matches_reference(spec_name):
    factory = SPEC_FACTORIES[spec_name]
    cycles = 450
    reference = reference_recorder(factory(), cycles)
    sim_rec, acc_rec = split_recorders(factory(), OperatingMode.SLA, cycles)
    assert traces_equivalent(reference, [sim_rec, acc_rec]) is None


@pytest.mark.parametrize("spec_name", ["als_streaming", "mixed"])
def test_auto_split_matches_reference(spec_name):
    factory = SPEC_FACTORIES[spec_name]
    cycles = 450
    reference = reference_recorder(factory(), cycles)
    sim_rec, acc_rec = split_recorders(factory(), OperatingMode.AUTO, cycles)
    assert traces_equivalent(reference, [sim_rec, acc_rec]) is None


@pytest.mark.parametrize("accuracy", [0.95, 0.8, 0.5, 0.2])
def test_forced_misprediction_never_breaks_equivalence(accuracy):
    """Injected prediction failures cost time but must never change results."""
    cycles = 400
    reference = reference_recorder(als_streaming_soc(n_bursts=10), cycles)
    sim_rec, acc_rec = split_recorders(
        als_streaming_soc(n_bursts=10),
        OperatingMode.ALS,
        cycles,
        forced_accuracy=accuracy,
        forced_accuracy_seed=accuracy_seed(accuracy),
    )
    assert traces_equivalent(reference, [sim_rec, acc_rec]) is None


def accuracy_seed(accuracy: float) -> int:
    return int(accuracy * 1000) + 7


@pytest.mark.parametrize("lob_depth", [1, 4, 8, 64, 256])
def test_lob_depth_never_breaks_equivalence(lob_depth):
    cycles = 350
    reference = reference_recorder(als_streaming_soc(n_bursts=8), cycles)
    sim_rec, acc_rec = split_recorders(
        als_streaming_soc(n_bursts=8), OperatingMode.ALS, cycles, lob_depth=lob_depth
    )
    assert traces_equivalent(reference, [sim_rec, acc_rec]) is None


def test_memory_contents_match_reference_after_co_emulation():
    """Beyond the beat stream, the final memory images must agree."""
    cycles = 400
    ref_spec = als_streaming_soc(n_bursts=10)
    ref_bus, _ = ref_spec.build_reference()
    kernel = CycleKernel("reference")
    kernel.add_component(ref_bus)
    kernel.run(cycles)

    split_spec = als_streaming_soc(n_bursts=10)
    sim_hbm, acc_hbm, _ = split_spec.build_split()
    config = CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=cycles, forced_accuracy=0.85)
    OptimisticCoEmulation(sim_hbm, acc_hbm, config).run()

    for slave_id, ref_slave in ref_bus.slaves.items():
        if not hasattr(ref_slave, "read_word"):
            continue
        split_slave = sim_hbm.local_slaves.get(slave_id) or acc_hbm.local_slaves.get(slave_id)
        assert split_slave is not None
        for offset in range(0, ref_slave.size_bytes, 4):
            address = ref_slave.base_address + offset
            assert split_slave.read_word(address) == ref_slave.read_word(address), hex(address)
