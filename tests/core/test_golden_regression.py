"""Equivalence guard against the pre-optimization engines.

``golden_seed.json`` was captured from the seed implementation (deepcopy
checkpoints, uncached phase info, list-building channel writes) before the
hot-path overhaul.  Every digest -- beat-key streams, transition outcomes,
prediction statistics, per-cycle modelled times and channel traffic -- must
remain bit-identical: the optimizations are pure mechanics, not modelling
changes.

Regenerate the file only when the *modelled* behaviour is intentionally
changed (see EXPERIMENTS.md).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.core import (
    CoEmulationConfig,
    ConventionalCoEmulation,
    OperatingMode,
    OptimisticCoEmulation,
)
from repro.workloads import (
    als_streaming_soc,
    mixed_soc,
    single_master_soc,
    sla_streaming_soc,
)

GOLDEN = json.loads((Path(__file__).parent / "golden_seed.json").read_text())

SPEC_FACTORIES = {
    "als_streaming": lambda: als_streaming_soc(n_bursts=10),
    "sla_streaming": lambda: sla_streaming_soc(n_bursts=10),
    "mixed": lambda: mixed_soc(n_transactions=24),
    "single_master": lambda: single_master_soc(n_bursts=8),
}

MODES = {mode.value: mode for mode in OperatingMode}


def run_case(key: str):
    parts = key.split("/")
    spec_name, mode_name = parts[0], parts[1].lower()
    kwargs = {}
    cycles = 450
    if len(parts) == 3:
        knob, value = parts[2].split("=")
        if knob == "acc":
            accuracy = float(value)
            kwargs["forced_accuracy"] = accuracy
            kwargs["forced_accuracy_seed"] = int(accuracy * 1000) + 7
            cycles = 400
        elif knob == "lob":
            kwargs["lob_depth"] = int(value)
            cycles = 350
    sim_hbm, acc_hbm, _ = SPEC_FACTORIES[spec_name]().build_split()
    config = CoEmulationConfig(mode=MODES[mode_name], total_cycles=cycles, **kwargs)
    if config.mode is OperatingMode.CONSERVATIVE:
        engine = ConventionalCoEmulation(sim_hbm, acc_hbm, config)
    else:
        engine = OptimisticCoEmulation(sim_hbm, acc_hbm, config)
    return engine.run()


def digest(result) -> dict:
    return {
        "sim_beats": hashlib.sha256(repr(result.sim_beat_keys).encode()).hexdigest(),
        "acc_beats": hashlib.sha256(repr(result.acc_beat_keys).encode()).hexdigest(),
        "n_sim_beats": len(result.sim_beat_keys),
        "n_acc_beats": len(result.acc_beat_keys),
        "committed_cycles": result.committed_cycles,
        "transitions": result.transitions,
        "prediction": result.prediction,
        "per_cycle_times": {k: repr(v) for k, v in result.per_cycle_times.items()},
        "total_modelled_time": repr(result.total_modelled_time),
        "channel_accesses": result.channel["accesses"],
        "channel_words": result.channel["words"],
        "channel_total_time": repr(result.channel["total_time"]),
        "wasted_leader_cycles": result.wasted_leader_cycles,
    }


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_behaviour_is_bit_identical_to_seed(key):
    measured = digest(run_case(key))
    expected = GOLDEN[key]
    mismatched = {
        field: (expected[field], measured[field])
        for field in expected
        if expected[field] != measured[field]
    }
    assert not mismatched, f"{key}: {mismatched}"
