"""Paper-claim regression tests.

Each test pins one quantitative or qualitative claim from the paper to the
reproduction.  Absolute agreement is not expected everywhere (the paper's
exact analytical derivation is unpublished and its testbed is hardware), but
the headline numbers, orderings and crossovers must hold.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import PaperComparison, crossover_accuracy
from repro.core import (
    CoEmulationConfig,
    ConventionalCoEmulation,
    OperatingMode,
    OptimisticCoEmulation,
)
from repro.core.analytical import (
    AnalyticalConfig,
    PAPER_ALS_MAX_GAIN_1000K,
    PAPER_CONVENTIONAL_100K,
    PAPER_CONVENTIONAL_1000K,
    PAPER_SLA_MAX_GAIN_100K,
    PAPER_SLA_MAX_GAIN_1000K,
    PAPER_TABLE2,
    conventional_performance,
    estimate_performance,
    figure4,
    sla_summary,
    table2,
)
from repro.workloads import als_streaming_soc


class TestChannelCharacterisation:
    """Section 1.2: the channel constants and their consequences."""

    def test_conventional_cycle_is_startup_dominated(self):
        config = AnalyticalConfig()
        cycle_time = 1.0 / conventional_performance(config)
        startup = 2 * config.channel.startup_overhead
        assert startup / cycle_time > 0.9

    def test_payload_amortisation_claim(self):
        """Sending 64 cycles worth of data in one access costs far less than
        64 separate accesses."""
        config = AnalyticalConfig()
        one_big = config.channel.startup_overhead + 64 * config.channel.acc_to_sim_word_time
        many_small = 64 * (config.channel.startup_overhead + config.channel.acc_to_sim_word_time)
        assert many_small / one_big > 40


class TestConventionalBaseline:
    def test_38_9_and_28_8_kcycles(self):
        assert conventional_performance(AnalyticalConfig()) == pytest.approx(
            PAPER_CONVENTIONAL_1000K, rel=0.02
        )
        assert conventional_performance(
            AnalyticalConfig(simulator_cycles_per_second=100_000.0)
        ) == pytest.approx(PAPER_CONVENTIONAL_100K, rel=0.02)


class TestAbstractHeadline:
    def test_1500_percent_gain_at_perfect_accuracy(self):
        """Abstract: 'a performance gain of 1500% compared to the conventional
        one' under ideal (100 % accuracy) conditions."""
        estimate = estimate_performance(AnalyticalConfig(prediction_accuracy=1.0))
        assert estimate.ratio > 15.0


class TestTable2:
    def test_ratio_column_within_tolerance(self):
        comparison = PaperComparison.from_mappings(
            "Table 2 ratio",
            paper={f"p={p}": PAPER_TABLE2[p]["ratio"] for p in PAPER_TABLE2},
            measured={
                f"p={round(e.prediction_accuracy, 3)}": e.ratio for e in table2()
            },
        )
        assert comparison.max_error() < 0.30
        # high-accuracy points are tight
        tight = [row for row in comparison.rows if float(row.name.split("=")[1]) >= 0.9]
        assert all(row.error < 0.10 for row in tight)

    def test_als_gain_matches_paper_at_p1(self):
        estimate = estimate_performance(AnalyticalConfig(prediction_accuracy=1.0))
        assert estimate.ratio == pytest.approx(PAPER_ALS_MAX_GAIN_1000K, rel=0.05)

    def test_als_crossover_with_conventional_near_p_0_1(self):
        """Paper Table 2: ratio drops to 0.94 at 10 % accuracy, i.e. the
        crossover with the conventional scheme happens around p ~ 0.1."""
        estimates = table2()
        accuracies = [e.prediction_accuracy for e in estimates]
        ratios = [e.ratio for e in estimates]
        crossing = crossover_accuracy(accuracies, ratios, threshold=1.0)
        assert crossing is not None
        assert 0.05 < crossing < 0.40

    def test_degradation_is_dominated_by_leader_time_and_channel(self):
        """Section 6: 'the biggest degradation comes from the increased number
        of clock cycles to be processed by leader and channel accesses.'"""
        low = estimate_performance(AnalyticalConfig(prediction_accuracy=0.3))
        degradation_terms = {
            "leader": low.t_acc,
            "channel": low.t_channel,
            "store": low.t_store,
            "restore": low.t_restore,
        }
        assert degradation_terms["channel"] > degradation_terms["store"] * 100
        assert degradation_terms["leader"] > degradation_terms["restore"] * 10


class TestSlaClaims:
    def test_max_gains(self):
        summary = sla_summary()
        assert summary[1_000_000.0]["max_gain"] == pytest.approx(
            PAPER_SLA_MAX_GAIN_1000K, rel=0.05
        )
        assert summary[100_000.0]["max_gain"] == pytest.approx(
            PAPER_SLA_MAX_GAIN_100K, rel=0.05
        )

    def test_sla_is_more_sensitive_to_accuracy_than_als(self):
        """Section 6: 'SLA suffers more from low prediction accuracies'
        because leader (simulator) time dominates."""
        for accuracy in (0.9, 0.6, 0.3):
            als = estimate_performance(
                AnalyticalConfig(mode=OperatingMode.ALS, prediction_accuracy=accuracy)
            )
            sla = estimate_performance(
                AnalyticalConfig(mode=OperatingMode.SLA, prediction_accuracy=accuracy)
            )
            assert sla.ratio < als.ratio

    def test_slower_simulator_needs_higher_accuracy_to_break_even(self):
        summary = sla_summary()
        assert (
            summary[100_000.0]["breakeven_accuracy"]
            > summary[1_000_000.0]["breakeven_accuracy"]
        )


class TestFigure4Claims:
    def test_reference_lines_match_conventional_baselines(self):
        series = figure4()
        for label, estimates in series.items():
            conventional = estimates[0].conventional_performance
            if "Sim=100k" in label:
                assert conventional == pytest.approx(PAPER_CONVENTIONAL_100K, rel=0.02)
            else:
                assert conventional == pytest.approx(PAPER_CONVENTIONAL_1000K, rel=0.02)

    def test_lob_depth_helps_high_accuracy_hurts_low_accuracy(self):
        series = figure4()
        for sim in ("100k", "1000k"):
            deep = series[f"Sim={sim}, LOBdepth=64"]
            shallow = series[f"Sim={sim}, LOBdepth=8"]
            assert deep[0].performance > shallow[0].performance  # p = 1.0
            assert deep[-1].performance < shallow[-1].performance  # p = 0.1


class TestMechanismReproducesTrends:
    """The protocol-level simulation (not just the closed-form model) must
    show the same qualitative behaviour."""

    @pytest.fixture(scope="class")
    def mechanism_results(self):
        results = {}
        for accuracy in (1.0, 0.9, 0.5):
            spec = als_streaming_soc(n_bursts=10)
            sim_hbm, acc_hbm, _ = spec.build_split()
            config = CoEmulationConfig(
                mode=OperatingMode.ALS,
                total_cycles=400,
                forced_accuracy=None if accuracy == 1.0 else accuracy,
            )
            results[accuracy] = OptimisticCoEmulation(sim_hbm, acc_hbm, config).run()
        spec = als_streaming_soc(n_bursts=10)
        sim_hbm, acc_hbm, _ = spec.build_split()
        results["conventional"] = ConventionalCoEmulation(
            sim_hbm, acc_hbm, CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=400)
        ).run()
        return results

    def test_substantial_gain_at_high_accuracy(self, mechanism_results):
        gain = mechanism_results[1.0].speedup_over(mechanism_results["conventional"])
        assert gain > 5.0

    def test_gain_decreases_with_accuracy(self, mechanism_results):
        perfs = [
            mechanism_results[1.0].performance_cycles_per_second,
            mechanism_results[0.9].performance_cycles_per_second,
            mechanism_results[0.5].performance_cycles_per_second,
        ]
        assert perfs == sorted(perfs, reverse=True)

    def test_channel_access_reduction_is_the_source_of_the_gain(self, mechanism_results):
        conventional = mechanism_results["conventional"]
        optimistic = mechanism_results[1.0]
        assert optimistic.channel["accesses"] < conventional.channel["accesses"] / 10
        assert optimistic.tchannel < conventional.tchannel / 5
