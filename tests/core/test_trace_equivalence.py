"""Equivalence and behaviour tests for the periodic trace-replay engines.

The trace engines (``conventional_trace`` / ``als_trace``) claim the same
contract as the batch kernels: *bit-identity* with their scalar twins on
every digest field -- beat streams, statistics, per-cycle modelled times
down to the last float ulp, channel counters -- while fast-forwarding
periodic busy loops.  These tests sweep every catalog scenario (ideal and
faulty channels, two-domain and multi-domain topologies) and pin down the
controller's refusal/bailout envelope.
"""

from __future__ import annotations

import pytest

from repro.core import CoEmulationConfig, OperatingMode, create_engine
from repro.core.trace import (
    MIN_PERIOD,
    PERIOD_CAP,
    ConventionalTraceCoEmulation,
    OptimisticTraceCoEmulation,
)
from repro.workloads.catalog import build_scenario, scenario_names


def full_digest(result) -> str:
    """Every field the golden digests hash, rendered bit-exactly."""
    return repr(
        (
            sorted(result.domain_beat_keys.items()),
            result.committed_cycles,
            result.transitions,
            result.prediction,
            {k: repr(v) for k, v in result.per_cycle_times.items()},
            repr(result.total_modelled_time),
            result.channel.get("accesses"),
            result.channel.get("words"),
            repr(result.channel.get("total_time")),
            result.wasted_leader_cycles,
            result.monitors_ok,
        )
    )


def run_scenario(name, mode, trace_replay, total_cycles=300, **config_kwargs):
    spec = build_scenario(name)
    config = CoEmulationConfig(
        mode=mode, total_cycles=total_cycles, trace_replay=trace_replay, **config_kwargs
    )
    config, partition = spec.prepare_run(config)
    return create_engine(config, partition=partition).run()


@pytest.mark.parametrize("name", scenario_names())
@pytest.mark.parametrize("mode", [OperatingMode.CONSERVATIVE, OperatingMode.ALS])
def test_trace_engines_are_bit_identical_on_every_scenario(name, mode):
    """Replay on vs off must agree bit for bit on every catalog scenario."""
    scalar = run_scenario(name, mode, False)
    traced = run_scenario(name, mode, True)
    assert full_digest(traced) == full_digest(scalar)
    assert traced.trace_replay  # the trace engines always report their stats


def test_replay_fires_on_dense_streaming():
    """The headline case: steady streaming bursts replay almost entirely."""
    spec = build_scenario("als_streaming", n_bursts=100)
    config = CoEmulationConfig(
        mode=OperatingMode.CONSERVATIVE, total_cycles=600, trace_replay=True
    )
    config, partition = spec.prepare_run(config)
    result = create_engine(config, partition=partition).run()
    stats = result.trace_replay
    assert stats["enabled"]
    assert stats["verified_periods"] >= 1
    assert stats["replay_hits"] >= 1
    # search + one verification period are the only scalar stretches
    assert stats["replayed_cycles"] > 600 * 0.6


def test_scalar_engines_report_no_trace_stats():
    result = run_scenario("als_streaming", OperatingMode.CONSERVATIVE, False)
    assert result.trace_replay == {}


@pytest.mark.parametrize(
    "name,reason",
    [
        ("lossy_streaming", "channel_faults"),
        ("dual_accelerator_pipeline", "topology"),
        ("rmw_fifo", "ticking_components"),
    ],
)
def test_envelope_refusals_are_structured(name, reason):
    """Out-of-envelope runs disable replay with one machine-readable reason."""
    result = run_scenario(name, OperatingMode.CONSERVATIVE, True)
    stats = result.trace_replay
    assert not stats["enabled"]
    assert stats["replayed_cycles"] == 0
    assert stats["bailouts"] == {reason: 1}


def test_als_trace_engine_disables_replay_but_stays_bit_identical():
    """Optimistic schemes train predictors during conservative cycles; the
    ALS trace engine reports the refusal instead of silently diverging."""
    result = run_scenario("als_streaming", OperatingMode.ALS, True)
    stats = result.trace_replay
    assert not stats["enabled"]
    assert stats["bailouts"] == {"predictor_training": 1}


def test_config_flag_resolves_to_trace_engines():
    spec = build_scenario("als_streaming")
    config = CoEmulationConfig(
        mode=OperatingMode.CONSERVATIVE, total_cycles=10, trace_replay=True
    )
    config, partition = spec.prepare_run(config)
    engine = create_engine(config, partition=partition)
    assert isinstance(engine, ConventionalTraceCoEmulation)

    spec = build_scenario("als_streaming")
    config = CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=10, trace_replay=True)
    config, partition = spec.prepare_run(config)
    engine = create_engine(config, partition=partition)
    assert isinstance(engine, OptimisticTraceCoEmulation)


def test_trace_flag_wins_over_batch_stepping():
    """trace_replay implies the batch run loop; the trace engine extends it."""
    spec = build_scenario("als_streaming")
    config = CoEmulationConfig(
        mode=OperatingMode.CONSERVATIVE,
        total_cycles=10,
        batch_stepping=True,
        trace_replay=True,
    )
    config, partition = spec.prepare_run(config)
    assert isinstance(
        create_engine(config, partition=partition), ConventionalTraceCoEmulation
    )


def test_explicit_engine_name_is_registered():
    spec = build_scenario("als_streaming")
    config = CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=120)
    config, partition = spec.prepare_run(config)
    result = create_engine(config, partition=partition, engine="conventional_trace").run()
    assert result.trace_replay["enabled"]


def test_horizon_bailout_is_noted_once():
    """A run tail shorter than the period falls back to scalar, counted once."""
    result = run_scenario("als_streaming", OperatingMode.CONSERVATIVE, True, 5000)
    bailouts = result.trace_replay["bailouts"]
    assert bailouts.get("horizon", 0) <= 1


def test_replay_respects_total_cycles_exactly():
    for cycles in (97, 250, 301):
        scalar = run_scenario("sla_streaming", OperatingMode.CONSERVATIVE, False, cycles)
        traced = run_scenario("sla_streaming", OperatingMode.CONSERVATIVE, True, cycles)
        assert traced.committed_cycles == scalar.committed_cycles
        assert full_digest(traced) == full_digest(scalar)


def test_period_bounds_are_sane():
    assert 2 <= MIN_PERIOD < PERIOD_CAP
