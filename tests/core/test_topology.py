"""Unit tests for the topology layer (domains, channels, serialisation)."""

from __future__ import annotations

import pickle

import pytest

from repro.channel.phy import ChannelTimingParams
from repro.core.topology import (
    DomainKind,
    DomainSpec,
    RESERVED_DOMAIN_IDS,
    SyncChannel,
    Topology,
    TopologyError,
)
from repro.sim.checkpoint import StateCostModel
from repro.sim.component import Domain
from repro.sim.time_model import DomainSpeed


def three_domain() -> Topology:
    return Topology(
        domains=(
            DomainSpec(domain=Domain.SIMULATOR, kind=DomainKind.SIMULATOR),
            DomainSpec(domain=Domain("acc0"), kind=DomainKind.ACCELERATOR),
            DomainSpec(domain=Domain("acc1"), kind=DomainKind.ACCELERATOR),
        )
    )


def test_canonical_pair_layout():
    topology = Topology.canonical_pair()
    assert topology.is_canonical_pair
    assert topology.domain_ids == (Domain.SIMULATOR, Domain.ACCELERATOR)
    assert len(topology.channels) == 1
    assert topology.describe() == "simulator+accelerator"


def test_default_channels_are_a_full_mesh():
    topology = three_domain()
    assert len(topology.channels) == 3  # C(3, 2)
    pairs = {channel.pair for channel in topology.channels}
    assert frozenset((Domain("acc0"), Domain("acc1"))) in pairs
    assert not topology.is_canonical_pair


def test_single_domain_topology_has_no_channels():
    topology = Topology(domains=(DomainSpec(Domain.SIMULATOR, DomainKind.SIMULATOR),))
    assert topology.channels == ()
    assert topology.n_domains == 1


def test_validation_rejects_bad_topologies():
    spec = DomainSpec(Domain.SIMULATOR, DomainKind.SIMULATOR)
    with pytest.raises(TopologyError, match="at least one domain"):
        Topology(domains=())
    with pytest.raises(TopologyError, match="duplicate domain ids"):
        Topology(domains=(spec, spec))
    for reserved in RESERVED_DOMAIN_IDS:
        with pytest.raises(TopologyError, match="reserved"):
            DomainSpec(Domain(reserved), DomainKind.ACCELERATOR)
    with pytest.raises(TopologyError, match="endpoints must differ"):
        SyncChannel(a=Domain.SIMULATOR, b=Domain.SIMULATOR)
    with pytest.raises(TopologyError, match="references"):
        Topology(
            domains=(spec,),
            channels=(SyncChannel(a=Domain.SIMULATOR, b=Domain("ghost")),),
        )
    with pytest.raises(TopologyError, match="duplicate sync channel"):
        Topology(
            domains=three_domain().domains,
            channels=(
                SyncChannel(a=Domain.SIMULATOR, b=Domain("acc0")),
                SyncChannel(a=Domain("acc0"), b=Domain.SIMULATOR),
            ),
        )


def test_kind_and_channel_lookups():
    topology = three_domain()
    assert topology.first_of_kind(DomainKind.ACCELERATOR) is Domain("acc0")
    assert topology.first_of_kind(DomainKind.SIMULATOR) is Domain.SIMULATOR
    assert [spec.domain.value for spec in topology.domains_of_kind(DomainKind.ACCELERATOR)] == [
        "acc0",
        "acc1",
    ]
    channel = topology.channel_between(Domain("acc1"), Domain.SIMULATOR)
    assert topology.oriented_pair(channel) == (Domain.SIMULATOR, Domain("acc1"))
    with pytest.raises(TopologyError, match="not part of this topology"):
        topology.spec_for(Domain("ghost"))


def test_star_topology_restricts_connectivity():
    hub = DomainSpec(Domain.SIMULATOR, DomainKind.SIMULATOR)
    leaves = [
        DomainSpec(Domain("acc0"), DomainKind.ACCELERATOR),
        DomainSpec(Domain("acc1"), DomainKind.ACCELERATOR),
    ]
    star = Topology.star(hub, leaves)
    assert len(star.channels) == 2
    with pytest.raises(TopologyError, match="no sync channel"):
        star.channel_between(Domain("acc0"), Domain("acc1"))


def test_round_trip_serialisation():
    topology = Topology(
        domains=(
            DomainSpec(Domain.SIMULATOR, DomainKind.SIMULATOR, speed=DomainSpeed(250_000.0)),
            DomainSpec(
                Domain("acc0"),
                DomainKind.ACCELERATOR,
                state_costs=StateCostModel(1e-9, 2e-9),
            ),
        ),
        channels=(
            SyncChannel(
                a=Domain.SIMULATOR,
                b=Domain("acc0"),
                params=ChannelTimingParams(startup_overhead=1e-6),
            ),
        ),
    )
    payload = topology.as_dict()
    assert payload["domains"][0]["cycles_per_second"] == 250_000.0
    assert Topology.from_dict(payload) == topology
    # a derived full mesh serialises without an explicit channel list
    mesh_payload = three_domain().as_dict()
    assert "channels" not in mesh_payload
    assert Topology.from_dict(mesh_payload) == three_domain()


def test_domain_ids_survive_pickling_with_identity():
    domain = Domain("acc7")
    assert pickle.loads(pickle.dumps(domain)) is domain
    assert pickle.loads(pickle.dumps(Domain.SIMULATOR)) is Domain.SIMULATOR
