"""Tests for the engine registry and the analytical pseudo-engine."""

from __future__ import annotations

import pytest

from repro.core import (
    AnalyticalPseudoEngine,
    CoEmulationConfig,
    ConventionalCoEmulation,
    Engine,
    EngineRegistryError,
    OperatingMode,
    OptimisticCoEmulation,
    available_engines,
    create_engine,
    engine_for_mode,
)
from repro.core.analytical import AnalyticalConfig, conventional_performance, estimate_performance
from repro.core.engine import register_engine
from repro.workloads import als_streaming_soc


@pytest.fixture()
def split():
    return als_streaming_soc(n_bursts=4).build_split()[:2]


def test_builtin_engines_are_registered():
    engines = available_engines()
    assert {"conventional", "optimistic", "analytical"} <= set(engines)
    assert engines["conventional"].modes == (OperatingMode.CONSERVATIVE,)
    assert set(engines["optimistic"].modes) == {
        OperatingMode.SLA,
        OperatingMode.ALS,
        OperatingMode.AUTO,
    }
    # the pseudo-engine claims no mode: explicit opt-in only
    assert engines["analytical"].modes == ()
    assert not engines["analytical"].requires_split


def test_every_operating_mode_resolves_to_an_engine():
    assert engine_for_mode(OperatingMode.CONSERVATIVE) == "conventional"
    for mode in (OperatingMode.SLA, OperatingMode.ALS, OperatingMode.AUTO):
        assert engine_for_mode(mode) == "optimistic"


def test_create_engine_dispatches_on_mode(split):
    sim_hbm, acc_hbm = split
    conservative = create_engine(
        CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=10),
        sim_hbm,
        acc_hbm,
    )
    assert isinstance(conservative, ConventionalCoEmulation)
    sim_hbm2, acc_hbm2 = als_streaming_soc(n_bursts=4).build_split()[:2]
    optimistic = create_engine(
        CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=10), sim_hbm2, acc_hbm2
    )
    assert isinstance(optimistic, OptimisticCoEmulation)
    assert isinstance(conservative, Engine)
    assert isinstance(optimistic, Engine)


def test_create_engine_explicit_override(split):
    sim_hbm, acc_hbm = split
    engine = create_engine(
        CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=10),
        sim_hbm,
        acc_hbm,
        engine="analytical",
    )
    assert isinstance(engine, AnalyticalPseudoEngine)


def test_create_engine_unknown_engine_raises(split):
    sim_hbm, acc_hbm = split
    with pytest.raises(EngineRegistryError, match="unknown engine"):
        create_engine(
            CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=10),
            sim_hbm,
            acc_hbm,
            engine="definitely-not-registered",
        )


def test_batch_engines_are_registered():
    engines = available_engines()
    assert {"conventional_batch", "als_batch"} <= set(engines)
    # explicit opt-in only: they claim no modes, selection goes through
    # ``engine=`` or the ``batch_stepping`` config toggle
    assert engines["conventional_batch"].modes == ()
    assert engines["als_batch"].modes == ()


def test_batch_stepping_toggle_resolves_to_batch_engines(split):
    from repro.core.batch import ConventionalBatchCoEmulation, OptimisticBatchCoEmulation

    sim_hbm, acc_hbm = split
    conservative = create_engine(
        CoEmulationConfig(
            mode=OperatingMode.CONSERVATIVE, total_cycles=10, batch_stepping=True
        ),
        sim_hbm,
        acc_hbm,
    )
    assert isinstance(conservative, ConventionalBatchCoEmulation)
    sim_hbm2, acc_hbm2 = als_streaming_soc(n_bursts=4).build_split()[:2]
    optimistic = create_engine(
        CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=10, batch_stepping=True),
        sim_hbm2,
        acc_hbm2,
    )
    assert isinstance(optimistic, OptimisticBatchCoEmulation)


def test_explicit_engine_override_wins_over_batch_stepping(split):
    sim_hbm, acc_hbm = split
    engine = create_engine(
        CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=10, batch_stepping=True),
        sim_hbm,
        acc_hbm,
        engine="optimistic",
    )
    assert type(engine) is OptimisticCoEmulation


def test_unknown_engine_error_suggests_nearest_name(split):
    sim_hbm, acc_hbm = split
    with pytest.raises(EngineRegistryError, match="did you mean 'als_batch'"):
        create_engine(
            CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=10),
            sim_hbm,
            acc_hbm,
            engine="als_bach",
        )


def test_create_engine_requires_split_models():
    with pytest.raises(EngineRegistryError, match="half bus models"):
        create_engine(CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=10))


def test_duplicate_registration_rejected():
    with pytest.raises(EngineRegistryError, match="already registered"):
        register_engine("conventional")(ConventionalCoEmulation)
    with pytest.raises(EngineRegistryError, match="already handled"):
        register_engine("another", modes=(OperatingMode.ALS,))(OptimisticCoEmulation)


def test_analytical_engine_matches_closed_form():
    config = CoEmulationConfig(
        mode=OperatingMode.ALS, total_cycles=1000, forced_accuracy=0.95
    )
    result = create_engine(config, engine="analytical").run()
    estimate = estimate_performance(
        AnalyticalConfig(mode=OperatingMode.ALS, prediction_accuracy=0.95)
    )
    assert result.performance_cycles_per_second == pytest.approx(estimate.performance)
    assert result.tsim == pytest.approx(estimate.t_sim)
    assert result.tchannel == pytest.approx(estimate.t_channel)
    assert result.committed_cycles == 1000
    assert result.sim_beat_keys == []  # no mechanism ran


def test_analytical_engine_conservative_matches_baseline():
    config = CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=500)
    result = create_engine(config, engine="analytical").run()
    assert result.performance_cycles_per_second == pytest.approx(
        conventional_performance(AnalyticalConfig())
    )


def test_analytical_engine_total_time_is_consistent():
    config = CoEmulationConfig(mode=OperatingMode.SLA, total_cycles=200)
    result = create_engine(config, engine="analytical").run()
    assert result.total_modelled_time == pytest.approx(
        result.committed_cycles / result.performance_cycles_per_second
    )
