"""Unit tests for the wall-clock ledger and execution cost models."""

from __future__ import annotations

import pytest

from repro.sim.time_model import (
    DEFAULT_ACCELERATOR_SPEED,
    DEFAULT_SIMULATOR_SPEED,
    DomainSpeed,
    ExecutionCostModel,
    LedgerError,
    SLOW_SIMULATOR_SPEED,
    WallClockLedger,
    summarize_ledgers,
)


def test_domain_speed_reciprocal():
    speed = DomainSpeed(1_000_000.0)
    assert speed.seconds_per_cycle == pytest.approx(1e-6)


def test_domain_speed_rejects_nonpositive():
    with pytest.raises(ValueError):
        DomainSpeed(0.0)


def test_paper_default_speeds():
    assert DEFAULT_SIMULATOR_SPEED.cycles_per_second == 1_000_000.0
    assert SLOW_SIMULATOR_SPEED.cycles_per_second == 100_000.0
    assert DEFAULT_ACCELERATOR_SPEED.cycles_per_second == 10_000_000.0


def test_ledger_charges_and_per_cycle_breakdown():
    ledger = WallClockLedger()
    ledger.charge("simulator", 2e-3)
    ledger.charge("channel", 1e-3)
    ledger.commit_cycles(1000)
    assert ledger.per_cycle("simulator") == pytest.approx(2e-6)
    assert ledger.per_cycle("channel") == pytest.approx(1e-6)
    assert ledger.per_cycle("accelerator") == 0.0
    assert ledger.total_seconds == pytest.approx(3e-3)


def test_ledger_performance_is_cycles_over_time():
    ledger = WallClockLedger()
    ledger.charge("simulator", 0.5)
    ledger.commit_cycles(1000)
    assert ledger.performance_cycles_per_second == pytest.approx(2000.0)


def test_ledger_rejects_unknown_category_and_negative_charges():
    ledger = WallClockLedger()
    with pytest.raises(LedgerError):
        ledger.charge("bogus", 1.0)
    with pytest.raises(LedgerError):
        ledger.charge("simulator", -1.0)
    with pytest.raises(LedgerError):
        ledger.commit_cycles(-5)


def test_ledger_with_no_cycles_reports_zero_per_cycle_and_inf_perf():
    ledger = WallClockLedger()
    assert ledger.per_cycle("simulator") == 0.0
    assert ledger.performance_cycles_per_second == float("inf")


def test_execution_cost_model_charges_at_domain_speed():
    ledger = WallClockLedger()
    cost = ExecutionCostModel(ledger, "accelerator", DomainSpeed(10_000_000.0))
    seconds = cost.charge_cycles(100)
    assert seconds == pytest.approx(1e-5)
    assert ledger.buckets["accelerator"] == pytest.approx(1e-5)
    assert cost.cycles_charged == 100


def test_execution_cost_model_rejects_negative_counts():
    cost = ExecutionCostModel(WallClockLedger(), "simulator", DomainSpeed(1e6))
    with pytest.raises(LedgerError):
        cost.charge_cycles(-1)


def test_ledger_merge_adds_buckets_but_not_cycles():
    first, second = WallClockLedger(), WallClockLedger()
    first.charge("channel", 1.0)
    second.charge("channel", 2.0)
    second.commit_cycles(10)
    first.merge(second)
    assert first.buckets["channel"] == pytest.approx(3.0)
    assert first.committed_cycles == 0


def test_summarize_ledgers_combines_time_and_cycles():
    ledgers = []
    for index in range(3):
        ledger = WallClockLedger()
        ledger.charge("simulator", 0.1 * (index + 1))
        ledger.commit_cycles(100)
        ledgers.append(ledger)
    combined = summarize_ledgers(ledgers)
    assert combined.committed_cycles == 300
    assert combined.buckets["simulator"] == pytest.approx(0.6)


def test_reset_clears_buckets_and_cycles():
    ledger = WallClockLedger()
    ledger.charge("other", 1.0)
    ledger.commit_cycles(5)
    ledger.reset()
    assert ledger.total_seconds == 0.0
    assert ledger.committed_cycles == 0


def test_as_dict_contains_summary_fields():
    ledger = WallClockLedger()
    ledger.charge("simulator", 1.0)
    ledger.commit_cycles(10)
    payload = ledger.as_dict()
    assert payload["committed_cycles"] == 10
    assert payload["performance"] == pytest.approx(10.0)
    assert payload["simulator"] == pytest.approx(1.0)
