"""Unit tests for state checkpointing (rb_store / rb_restore)."""

from __future__ import annotations

import pytest

from repro.sim.checkpoint import (
    ACCELERATOR_STATE_COSTS,
    CheckpointError,
    CheckpointManager,
    SIMULATOR_STATE_COSTS,
    StateCostModel,
)

from .test_component import CountingComponent


def make_manager(budget=None, cost=None):
    components = [CountingComponent("a"), CountingComponent("b")]
    manager = CheckpointManager(
        components,
        cost_model=cost or StateCostModel(1e-9, 1e-9),
        rollback_variable_budget=budget,
    )
    return manager, components


def test_store_and_restore_round_trip_component_state():
    manager, (a, b) = make_manager()
    a.counter, b.counter = 5, 7
    manager.store(cycle=10)
    a.counter, b.counter = 99, 98
    checkpoint = manager.restore()
    assert checkpoint.cycle == 10
    assert (a.counter, b.counter) == (5, 7)
    assert not manager.has_checkpoint


def test_restore_without_store_raises():
    manager, _ = make_manager()
    with pytest.raises(CheckpointError):
        manager.restore()


def test_discard_drops_checkpoint_without_restoring():
    manager, (a, _) = make_manager()
    a.counter = 1
    manager.store(cycle=0)
    a.counter = 42
    manager.discard()
    assert a.counter == 42
    with pytest.raises(CheckpointError):
        manager.discard()


def test_checkpoints_are_deep_copies():
    """Mutating component state after the store must not corrupt the snapshot."""

    class ListState(CountingComponent):
        def __init__(self, name):
            super().__init__(name)
            self.items = [1, 2]

        def snapshot_state(self):
            return {"items": self.items}

        def restore_state(self, state):
            self.items = state["items"]

    component = ListState("l")
    manager = CheckpointManager([component], StateCostModel(0, 0))
    manager.store(cycle=0)
    component.items.append(3)
    manager.restore()
    assert component.items == [1, 2]


def test_variable_budget_overrides_actual_count():
    manager, _ = make_manager(budget=1000)
    assert manager.variable_count() == 1000
    manager_actual, _ = make_manager(budget=None)
    assert manager_actual.variable_count() == 2


def test_store_restore_costs_accumulate_in_stats():
    cost = StateCostModel(store_time_per_variable=2e-9, restore_time_per_variable=1e-9)
    manager, _ = make_manager(budget=500, cost=cost)
    manager.store(cycle=0)
    manager.restore()
    assert manager.stats.stores == 1
    assert manager.stats.restores == 1
    assert manager.stats.store_time == pytest.approx(500 * 2e-9)
    assert manager.stats.restore_time == pytest.approx(500 * 1e-9)


def test_nested_checkpoints_restore_in_lifo_order():
    manager, (a, _) = make_manager()
    a.counter = 1
    manager.store(cycle=1)
    a.counter = 2
    manager.store(cycle=2)
    a.counter = 3
    assert manager.depth == 2
    manager.restore()
    assert a.counter == 2
    manager.restore()
    assert a.counter == 1


def test_cost_model_formulas():
    model = StateCostModel(
        store_time_per_variable=3e-9,
        restore_time_per_variable=2e-9,
        fixed_store_overhead=1e-6,
        fixed_restore_overhead=2e-6,
    )
    assert model.store_time(100) == pytest.approx(1e-6 + 300e-9)
    assert model.restore_time(100) == pytest.approx(2e-6 + 200e-9)


def test_paper_default_cost_models_are_ordered_sensibly():
    """The simulator (host memcpy) must be far slower per variable than the
    accelerator's hardware-assisted state copy."""
    assert (
        SIMULATOR_STATE_COSTS.store_time_per_variable
        > 100 * ACCELERATOR_STATE_COSTS.store_time_per_variable
    )
    # With the paper's 1000 rollback variables the accelerator store is tens
    # of nanoseconds while the simulator store is on the order of 10 us.
    assert ACCELERATOR_STATE_COSTS.store_time(1000) < 1e-7
    assert 1e-6 < SIMULATOR_STATE_COSTS.store_time(1000) < 1e-4
