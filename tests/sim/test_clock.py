"""Unit tests for the per-domain clock."""

from __future__ import annotations

import pytest

from repro.sim.clock import Clock, ClockError


def test_advance_moves_cycle_and_total():
    clock = Clock("c")
    clock.advance(3)
    clock.advance()
    assert clock.cycle == 4
    assert clock.total_executed == 4


def test_negative_advance_rejected():
    clock = Clock("c")
    with pytest.raises(ClockError):
        clock.advance(-1)


def test_rollback_keeps_total_executed():
    clock = Clock("c")
    clock.advance(10)
    clock.rollback_to(4)
    assert clock.cycle == 4
    assert clock.total_executed == 10
    assert clock.wasted_cycles == 6


def test_rollback_forward_rejected():
    clock = Clock("c")
    clock.advance(2)
    with pytest.raises(ClockError):
        clock.rollback_to(5)


def test_rollback_negative_rejected():
    clock = Clock("c")
    with pytest.raises(ClockError):
        clock.rollback_to(-1)


def test_mark_and_pop_mark():
    clock = Clock("c")
    clock.advance(7)
    assert clock.mark() == 7
    clock.advance(5)
    assert clock.pop_mark() == 7


def test_pop_mark_without_mark_raises():
    with pytest.raises(ClockError):
        Clock("c").pop_mark()


def test_snapshot_restore_round_trip():
    clock = Clock("c")
    clock.advance(6)
    state = clock.snapshot()
    clock.advance(4)
    clock.restore(state)
    assert clock.cycle == 6
    # executed work is never forgotten
    assert clock.total_executed == 10


def test_reset_clears_everything():
    clock = Clock("c")
    clock.advance(5)
    clock.mark()
    clock.reset()
    assert clock.cycle == 0
    assert clock.total_executed == 0
    with pytest.raises(ClockError):
        clock.pop_mark()
