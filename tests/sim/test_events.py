"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.sim.events import EventScheduler, SimulationError, Timer


def test_events_fire_in_time_order():
    scheduler = EventScheduler()
    fired = []
    scheduler.schedule(5, lambda p: fired.append(p), "b")
    scheduler.schedule(2, lambda p: fired.append(p), "a")
    scheduler.schedule(9, lambda p: fired.append(p), "c")
    scheduler.fire_until(10)
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    scheduler = EventScheduler()
    fired = []
    for index in range(5):
        scheduler.schedule(3, lambda p: fired.append(p), index)
    scheduler.fire_until(3)
    assert fired == [0, 1, 2, 3, 4]


def test_fire_until_only_fires_due_events():
    scheduler = EventScheduler()
    fired = []
    scheduler.schedule(2, lambda p: fired.append(p), "early")
    scheduler.schedule(8, lambda p: fired.append(p), "late")
    count = scheduler.fire_until(5)
    assert count == 1
    assert fired == ["early"]
    assert len(scheduler) == 1


def test_scheduling_in_the_past_is_rejected():
    scheduler = EventScheduler()
    scheduler.fire_until(10)
    with pytest.raises(SimulationError):
        scheduler.schedule(5, lambda p: None)


def test_negative_delay_is_rejected():
    scheduler = EventScheduler()
    with pytest.raises(SimulationError):
        scheduler.schedule_in(-1, lambda p: None)


def test_time_cannot_move_backwards():
    scheduler = EventScheduler()
    scheduler.fire_until(4)
    with pytest.raises(SimulationError):
        scheduler.fire_until(3)


def test_cancelled_events_do_not_fire():
    scheduler = EventScheduler()
    fired = []
    event = scheduler.schedule(3, lambda p: fired.append("x"))
    scheduler.cancel(event)
    scheduler.fire_until(5)
    assert fired == []
    assert scheduler.stats.cancelled == 1
    assert scheduler.stats.fired == 0


def test_callback_can_schedule_follow_up_event_in_same_pass():
    scheduler = EventScheduler()
    fired = []

    def chain(payload):
        fired.append(payload)
        if payload < 3:
            scheduler.schedule(scheduler.now + 1, chain, payload + 1)

    scheduler.schedule(0, chain, 0)
    scheduler.fire_until(10)
    assert fired == [0, 1, 2, 3]


def test_schedule_in_is_relative_to_current_time():
    scheduler = EventScheduler()
    scheduler.fire_until(7)
    fired = []
    scheduler.schedule_in(3, lambda p: fired.append(scheduler.now))
    scheduler.fire_until(20)
    assert fired == [10]


def test_peek_time_skips_cancelled_events():
    scheduler = EventScheduler()
    first = scheduler.schedule(2, lambda p: None)
    scheduler.schedule(6, lambda p: None)
    scheduler.cancel(first)
    assert scheduler.peek_time() == 6


def test_drain_returns_pending_events_without_firing():
    scheduler = EventScheduler()
    fired = []
    scheduler.schedule(1, lambda p: fired.append(1))
    scheduler.schedule(2, lambda p: fired.append(2))
    drained = list(scheduler.drain())
    assert len(drained) == 2
    assert fired == []


def test_reset_clears_queue_and_time():
    scheduler = EventScheduler()
    scheduler.schedule(5, lambda p: None)
    scheduler.fire_until(3)
    scheduler.reset()
    assert scheduler.now == 0
    assert len(scheduler) == 0


def test_timer_restart_and_stop():
    scheduler = EventScheduler()
    fired = []
    timer = Timer(scheduler, callback=lambda p: fired.append(scheduler.now))
    timer.start(5)
    timer.start(8)  # restart supersedes the first deadline
    scheduler.fire_until(20)
    assert fired == [8]
    timer.start(3)
    timer.stop()
    scheduler.fire_until(40)
    assert fired == [8]
    assert not timer.pending


def test_len_stays_consistent_through_schedule_cancel_fire():
    scheduler = EventScheduler()
    events = [scheduler.schedule(i + 1, lambda p: None) for i in range(10)]
    assert len(scheduler) == 10
    for event in events[:4]:
        scheduler.cancel(event)
    assert len(scheduler) == 6
    scheduler.cancel(events[0])  # double-cancel is a no-op for the count
    assert len(scheduler) == 6
    scheduler.fire_until(5)  # fires events 5 (indices 4..) due at <= 5
    assert len(scheduler) == 5
    scheduler.fire_until(100)
    assert len(scheduler) == 0


def test_cancel_after_fire_does_not_corrupt_len():
    scheduler = EventScheduler()
    early = scheduler.schedule(1, lambda p: None)
    scheduler.schedule(10, lambda p: None)
    scheduler.fire_until(5)
    scheduler.cancel(early)  # already fired: must not decrement the count
    assert len(scheduler) == 1


def test_cancelled_events_are_purged_lazily_from_the_heap():
    scheduler = EventScheduler()
    for round_index in range(200):
        event = scheduler.schedule(1000 + round_index, lambda p: None)
        scheduler.cancel(event)
    live = scheduler.schedule(2000, lambda p: None)
    # the heap must not have accumulated all 200 cancelled entries
    assert len(scheduler._queue) < 100
    assert len(scheduler) == 1
    fired = scheduler.fire_until(3000)
    assert fired == 1
    assert not live.cancelled
