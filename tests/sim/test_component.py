"""Unit tests for clocked components, groups and ports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.component import (
    AbstractionLevel,
    ClockedComponent,
    ComponentGroup,
    Domain,
    Port,
)


class CountingComponent(ClockedComponent):
    """Test helper: counts its evaluations and exposes snapshotable state."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.seen_cycles: list[int] = []
        self.counter = 0

    def evaluate(self, cycle: int) -> None:
        self.seen_cycles.append(cycle)
        self.counter += 1

    def snapshot_state(self) -> dict:
        return {"counter": self.counter}

    def restore_state(self, state: dict) -> None:
        self.counter = state["counter"]

    def reset(self) -> None:
        super().reset()
        self.seen_cycles = []
        self.counter = 0


def test_domain_other_flips_between_domains_but_is_deprecated():
    with pytest.warns(DeprecationWarning, match="Domain.other is deprecated"):
        assert Domain.SIMULATOR.other is Domain.ACCELERATOR
    with pytest.warns(DeprecationWarning):
        assert Domain.ACCELERATOR.other is Domain.SIMULATOR
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="undefined for non-canonical"):
            Domain("acc0").other


def test_domain_is_an_open_interned_id_type():
    assert Domain("simulator") is Domain.SIMULATOR
    assert Domain("acc0") is Domain("acc0")
    assert Domain("acc0") == "acc0"
    assert Domain.SIMULATOR.value == "simulator"
    assert isinstance(Domain("acc1"), str)
    with pytest.raises(ValueError):
        Domain("")
    with pytest.raises(ValueError):
        Domain(" padded ")


def test_abstraction_levels_are_distinct():
    assert AbstractionLevel.TL != AbstractionLevel.RTL


def test_tick_calls_evaluate_and_counts_cycles():
    component = CountingComponent("c")
    component.tick(0)
    component.tick(1)
    assert component.seen_cycles == [0, 1]
    assert component.cycle_count == 2


def test_default_snapshot_is_empty_and_restore_accepts_it():
    class Stateless(ClockedComponent):
        def evaluate(self, cycle: int) -> None:
            return

    component = Stateless("s")
    assert component.snapshot_state() == {}
    component.restore_state({})  # must not raise


def test_restore_nonempty_snapshot_without_override_raises():
    class Stateless(ClockedComponent):
        def evaluate(self, cycle: int) -> None:
            return

    with pytest.raises(NotImplementedError):
        Stateless("s").restore_state({"x": 1})


def test_rollback_variable_count_counts_scalars_recursively():
    class Nested(ClockedComponent):
        def evaluate(self, cycle: int) -> None:
            return

        def snapshot_state(self) -> dict:
            return {"a": 1, "b": [1, 2, 3], "c": {"d": (4, 5)}, "e": np.zeros(10)}

    assert Nested("n").rollback_variable_count() == 1 + 3 + 2 + 10


def test_group_evaluates_members_in_order():
    order = []

    class Ordered(ClockedComponent):
        def __init__(self, name):
            super().__init__(name)

        def evaluate(self, cycle):
            order.append(self.name)

    group = ComponentGroup("g", [Ordered("first"), Ordered("second")])
    group.add(Ordered("third"))
    group.tick(0)
    assert order == ["first", "second", "third"]


def test_group_snapshot_and_restore_round_trips_members():
    a, b = CountingComponent("a"), CountingComponent("b")
    group = ComponentGroup("g", [a, b])
    group.tick(0)
    state = group.snapshot_state()
    group.tick(1)
    group.tick(2)
    group.restore_state(state)
    assert a.counter == 1
    assert b.counter == 1


def test_group_rollback_variable_count_sums_members():
    group = ComponentGroup("g", [CountingComponent("a"), CountingComponent("b")])
    assert group.rollback_variable_count() == 2


def test_group_reset_resets_members():
    a = CountingComponent("a")
    group = ComponentGroup("g", [a])
    group.tick(0)
    group.reset()
    assert group.cycle_count == 0
    assert a.cycle_count == 0


def test_port_put_get_and_clear():
    port = Port("p")
    assert port.get("default") == "default"
    assert not port.valid
    port.put(42)
    assert port.valid
    assert port.get() == 42
    port.clear()
    assert not port.valid
    assert port.get() is None
