"""Unit tests for the cycle-based kernel."""

from __future__ import annotations

import pytest

from repro.sim.kernel import CycleKernel, KernelError
from repro.sim.signal import SignalBundle

from .test_component import CountingComponent


def test_run_executes_requested_number_of_cycles():
    kernel = CycleKernel("k")
    component = kernel.add_component(CountingComponent("c"))
    kernel.run(5)
    assert component.seen_cycles == [0, 1, 2, 3, 4]
    assert kernel.current_cycle == 5
    assert kernel.stats.cycles_run == 5


def test_run_until_reaches_absolute_cycle():
    kernel = CycleKernel("k")
    kernel.add_component(CountingComponent("c"))
    kernel.run(3)
    kernel.run_until(10)
    assert kernel.current_cycle == 10


def test_run_until_past_cycle_raises():
    kernel = CycleKernel("k")
    kernel.run(5)
    with pytest.raises(KernelError):
        kernel.run_until(2)


def test_negative_run_raises():
    kernel = CycleKernel("k")
    with pytest.raises(KernelError):
        kernel.run(-1)


def test_bundles_commit_at_end_of_each_cycle():
    kernel = CycleKernel("k")
    bundle = kernel.add_bundle(SignalBundle("b"))
    signal = bundle.add("x", 0)
    observed = []

    class Driver(CountingComponent):
        def evaluate(self, cycle):
            observed.append(signal.value)
            signal.drive(cycle + 100)

    kernel.add_component(Driver("d"))
    kernel.run(3)
    # each cycle sees the value committed at the end of the previous cycle
    assert observed == [0, 100, 101]
    assert signal.value == 102


def test_pre_and_post_cycle_hooks_run_in_order():
    kernel = CycleKernel("k")
    trace = []
    kernel.add_pre_cycle_hook(lambda c: trace.append(("pre", c)))
    kernel.add_post_cycle_hook(lambda c: trace.append(("post", c)))

    class Middle(CountingComponent):
        def evaluate(self, cycle):
            trace.append(("eval", cycle))

    kernel.add_component(Middle("m"))
    kernel.run(2)
    assert trace == [
        ("pre", 0),
        ("eval", 0),
        ("post", 0),
        ("pre", 1),
        ("eval", 1),
        ("post", 1),
    ]


def test_scheduled_events_fire_before_component_evaluation():
    kernel = CycleKernel("k")
    trace = []
    kernel.scheduler.schedule(2, lambda p: trace.append("event"))

    class Recorder(CountingComponent):
        def evaluate(self, cycle):
            if cycle == 2:
                trace.append("eval")

    kernel.add_component(Recorder("r"))
    kernel.run(4)
    assert trace == ["event", "eval"]


def test_snapshot_restore_round_trips_components_and_clock():
    kernel = CycleKernel("k")
    component = kernel.add_component(CountingComponent("c"))
    bundle = kernel.add_bundle(SignalBundle("b"))
    signal = bundle.add("x", 0)
    kernel.run(4)
    signal.drive(1)
    bundle.commit()
    state = kernel.snapshot_state()
    kernel.run(6)
    kernel.restore_state(state)
    assert kernel.current_cycle == 4
    assert component.counter == 4
    assert signal.value == 1


def test_reset_restores_power_on_state():
    kernel = CycleKernel("k")
    component = kernel.add_component(CountingComponent("c"))
    kernel.run(5)
    kernel.reset()
    assert kernel.current_cycle == 0
    assert component.counter == 0
    assert kernel.stats.cycles_run == 0


def test_rollback_variable_count_sums_components():
    kernel = CycleKernel("k")
    kernel.add_components([CountingComponent("a"), CountingComponent("b")])
    assert kernel.rollback_variable_count() == 2
