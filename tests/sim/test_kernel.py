"""Unit tests for the cycle-based kernel."""

from __future__ import annotations

import pytest

from repro.sim.kernel import CycleKernel, KernelError
from repro.sim.signal import SignalBundle

from .test_component import CountingComponent


def test_run_executes_requested_number_of_cycles():
    kernel = CycleKernel("k")
    component = kernel.add_component(CountingComponent("c"))
    kernel.run(5)
    assert component.seen_cycles == [0, 1, 2, 3, 4]
    assert kernel.current_cycle == 5
    assert kernel.stats.cycles_run == 5


def test_run_until_reaches_absolute_cycle():
    kernel = CycleKernel("k")
    kernel.add_component(CountingComponent("c"))
    kernel.run(3)
    kernel.run_until(10)
    assert kernel.current_cycle == 10


def test_run_until_past_cycle_raises():
    kernel = CycleKernel("k")
    kernel.run(5)
    with pytest.raises(KernelError):
        kernel.run_until(2)


def test_negative_run_raises():
    kernel = CycleKernel("k")
    with pytest.raises(KernelError):
        kernel.run(-1)


def test_bundles_commit_at_end_of_each_cycle():
    kernel = CycleKernel("k")
    bundle = kernel.add_bundle(SignalBundle("b"))
    signal = bundle.add("x", 0)
    observed = []

    class Driver(CountingComponent):
        def evaluate(self, cycle):
            observed.append(signal.value)
            signal.drive(cycle + 100)

    kernel.add_component(Driver("d"))
    kernel.run(3)
    # each cycle sees the value committed at the end of the previous cycle
    assert observed == [0, 100, 101]
    assert signal.value == 102


def test_pre_and_post_cycle_hooks_run_in_order():
    kernel = CycleKernel("k")
    trace = []
    kernel.add_pre_cycle_hook(lambda c: trace.append(("pre", c)))
    kernel.add_post_cycle_hook(lambda c: trace.append(("post", c)))

    class Middle(CountingComponent):
        def evaluate(self, cycle):
            trace.append(("eval", cycle))

    kernel.add_component(Middle("m"))
    kernel.run(2)
    assert trace == [
        ("pre", 0),
        ("eval", 0),
        ("post", 0),
        ("pre", 1),
        ("eval", 1),
        ("post", 1),
    ]


def test_scheduled_events_fire_before_component_evaluation():
    kernel = CycleKernel("k")
    trace = []
    kernel.scheduler.schedule(2, lambda p: trace.append("event"))

    class Recorder(CountingComponent):
        def evaluate(self, cycle):
            if cycle == 2:
                trace.append("eval")

    kernel.add_component(Recorder("r"))
    kernel.run(4)
    assert trace == ["event", "eval"]


def test_snapshot_restore_round_trips_components_and_clock():
    kernel = CycleKernel("k")
    component = kernel.add_component(CountingComponent("c"))
    bundle = kernel.add_bundle(SignalBundle("b"))
    signal = bundle.add("x", 0)
    kernel.run(4)
    signal.drive(1)
    bundle.commit()
    state = kernel.snapshot_state()
    kernel.run(6)
    kernel.restore_state(state)
    assert kernel.current_cycle == 4
    assert component.counter == 4
    assert signal.value == 1


def test_reset_restores_power_on_state():
    kernel = CycleKernel("k")
    component = kernel.add_component(CountingComponent("c"))
    kernel.run(5)
    kernel.reset()
    assert kernel.current_cycle == 0
    assert component.counter == 0
    assert kernel.stats.cycles_run == 0


def test_rollback_variable_count_sums_components():
    kernel = CycleKernel("k")
    kernel.add_components([CountingComponent("a"), CountingComponent("b")])
    assert kernel.rollback_variable_count() == 2


class QuiescentComponent(CountingComponent):
    """Test helper: declares its tick a no-op until a fixed wake-up cycle."""

    def __init__(self, name: str, wake_at: float) -> None:
        super().__init__(name)
        self.wake_at = wake_at

    def quiescent_until(self, cycle: int) -> float:
        return self.wake_at


def test_fast_forward_skips_quiescent_stretch():
    kernel = CycleKernel("k")
    kernel.add_component(QuiescentComponent("q", wake_at=float("inf")))
    skipped = kernel.fast_forward(25)
    assert skipped == 25
    assert kernel.current_cycle == 25
    assert kernel.stats.cycles_run == 25
    assert kernel.stats.commits == 25


def test_fast_forward_is_capped_by_component_horizon():
    kernel = CycleKernel("k")
    kernel.add_component(QuiescentComponent("q", wake_at=7.0))
    assert kernel.fast_forward(25) == 7
    assert kernel.current_cycle == 7
    # now at the wake-up cycle: nothing further can be proven
    assert kernel.fast_forward(25) == 0
    assert kernel.current_cycle == 7


def test_fast_forward_is_capped_by_pending_events():
    kernel = CycleKernel("k")
    kernel.add_component(QuiescentComponent("q", wake_at=float("inf")))
    fired = []
    kernel.scheduler.schedule(10, fired.append)
    assert kernel.fast_forward(25) == 10
    assert kernel.current_cycle == 10
    assert fired == []  # the event is due *at* 10 and must fire scalar
    kernel.run_cycle()
    assert fired == [None]


def test_fast_forward_refuses_components_without_declaration():
    kernel = CycleKernel("k")
    component = kernel.add_component(CountingComponent("c"))
    assert kernel.fast_forward(25) == 0
    assert kernel.current_cycle == 0
    assert component.counter == 0


def test_fast_forward_refuses_hooks_and_bundles():
    kernel = CycleKernel("k")
    kernel.add_component(QuiescentComponent("q", wake_at=float("inf")))
    kernel.add_pre_cycle_hook(lambda c: None)
    assert kernel.fast_forward(25) == 0

    kernel2 = CycleKernel("k2")
    kernel2.add_component(QuiescentComponent("q", wake_at=float("inf")))
    kernel2.add_bundle(SignalBundle("b"))
    assert kernel2.fast_forward(25) == 0


def test_fast_forward_zero_or_negative_request_is_a_no_op():
    kernel = CycleKernel("k")
    kernel.add_component(QuiescentComponent("q", wake_at=float("inf")))
    assert kernel.fast_forward(0) == 0
    assert kernel.fast_forward(-3) == 0
    assert kernel.current_cycle == 0


def test_fast_forward_refusals_carry_structured_reasons():
    """A refused fast-forward names its reason instead of a bare zero."""
    kernel = CycleKernel("k")
    component = kernel.add_component(CountingComponent("dma0"))
    assert kernel.fast_forward(25) == 0
    assert kernel.last_refusal == "undeclared_component:dma0"
    assert component.counter == 0

    hooked = CycleKernel("hooked")
    hooked.add_component(QuiescentComponent("q", wake_at=float("inf")))
    hooked.add_pre_cycle_hook(lambda c: None)
    hooked.fast_forward(25)
    assert hooked.last_refusal == "hooks"

    bundled = CycleKernel("bundled")
    bundled.add_component(QuiescentComponent("q", wake_at=float("inf")))
    bundled.add_bundle(SignalBundle("b"))
    bundled.fast_forward(25)
    assert bundled.last_refusal == "bundles"

    empty = CycleKernel("empty")
    empty.add_component(QuiescentComponent("q", wake_at=float("inf")))
    empty.fast_forward(0)
    assert empty.last_refusal == "no_cycles"


def test_fast_forward_refusal_reasons_for_horizons():
    kernel = CycleKernel("k")
    kernel.add_component(QuiescentComponent("bus", wake_at=7.0))
    assert kernel.fast_forward(25) == 7
    assert kernel.last_refusal is None  # success clears the reason
    assert kernel.fast_forward(25) == 0
    assert kernel.last_refusal == "component_horizon:bus"

    evented = CycleKernel("evented")
    evented.add_component(QuiescentComponent("q", wake_at=float("inf")))
    evented.scheduler.schedule(0, lambda _: None)
    assert evented.fast_forward(25) == 0
    assert evented.last_refusal == "event_horizon"


def test_fast_forward_refusals_are_tallied_in_stats():
    kernel = CycleKernel("k")
    kernel.add_component(CountingComponent("c"))
    kernel.fast_forward(10)
    kernel.fast_forward(10)
    stats = kernel.stats.as_dict()
    assert stats["fast_forward_refusals"] == {"undeclared_component:c": 2}
    kernel.reset()
    assert kernel.last_refusal is None
    assert kernel.stats.as_dict()["fast_forward_refusals"] == {}


def test_fast_forward_then_run_matches_pure_scalar_schedule():
    """A fast-forwarded kernel continues exactly where a scalar one would."""
    scalar = CycleKernel("scalar")
    scalar_component = scalar.add_component(QuiescentComponent("q", wake_at=12.0))
    scalar.run(12)

    batched = CycleKernel("batched")
    batched_component = batched.add_component(QuiescentComponent("q", wake_at=12.0))
    assert batched.fast_forward(12) == 12
    assert batched.current_cycle == scalar.current_cycle
    scalar.run(3)
    batched.run(3)
    assert batched_component.seen_cycles == [12, 13, 14]
    assert scalar_component.seen_cycles[-3:] == [12, 13, 14]
    assert batched.current_cycle == scalar.current_cycle
