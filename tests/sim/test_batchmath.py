"""Bit-exactness tests for the batched float accumulation helpers.

The batch-stepped engines stand or fall on one property: ``repeat_add`` /
``repeat_add_pattern`` must reproduce the scalar ``+=`` loop bit for bit,
through both the numpy fast path and the stdlib fallback.  These tests pin
the two implementations against the reference loop across awkward values
(denormal-adjacent increments, values spanning many orders of magnitude,
counts on both sides of the numpy crossover).
"""

from __future__ import annotations

import math

import pytest

from repro.sim import batchmath
from repro.sim.batchmath import NUMPY_MIN_ADDS, have_numpy, repeat_add, repeat_add_pattern


def scalar_repeat_add(base, increment, count):
    for _ in range(count):
        base += increment
    return base


def scalar_repeat_pattern(base, pattern, count):
    for _ in range(count):
        for increment in pattern:
            base += increment
    return base


AWKWARD_INCREMENTS = [
    1e-8,
    1 / 3,
    0.1,
    2.5e-9,
    1.0000000000000002,
    7.137e-7,
]


@pytest.mark.parametrize("increment", AWKWARD_INCREMENTS)
@pytest.mark.parametrize("count", [0, 1, 2, NUMPY_MIN_ADDS - 1, NUMPY_MIN_ADDS, 1000])
def test_repeat_add_is_bit_identical_to_scalar_loop(increment, count):
    base = 123.456789
    assert repeat_add(base, increment, count) == scalar_repeat_add(base, increment, count)


def test_repeat_add_matches_scalar_across_magnitudes():
    # base >> increment: every add rounds, and the rounding must match.
    base = 1e12
    increment = 1e-4
    for count in (3, 500):
        assert repeat_add(base, increment, count) == scalar_repeat_add(base, increment, count)


@pytest.mark.parametrize(
    "pattern",
    [
        [1e-6],
        [1e-6, 2.5e-7],
        [0.1, 1 / 3, 7.137e-7, 2.5e-9],
    ],
)
@pytest.mark.parametrize("count", [0, 1, 7, 400])
def test_repeat_add_pattern_is_bit_identical_to_scalar_loop(pattern, count):
    base = 0.987654321
    assert repeat_add_pattern(base, pattern, count) == scalar_repeat_pattern(
        base, pattern, count
    )


def test_repeat_add_pattern_empty_pattern_is_identity():
    assert repeat_add_pattern(3.14, [], 100) == 3.14


def test_zero_and_negative_counts_are_identity():
    assert repeat_add(2.5, 1e-3, 0) == 2.5
    assert repeat_add(2.5, 1e-3, -4) == 2.5
    assert repeat_add_pattern(2.5, [1e-3], -1) == 2.5


def test_stdlib_fallback_matches_numpy_path(monkeypatch):
    """Force the fallback and compare against the (possibly-numpy) default."""
    base, increment, count = 55.5, 1 / 7, 5 * NUMPY_MIN_ADDS
    expected = repeat_add(base, increment, count)
    monkeypatch.setattr(batchmath, "_np", None)
    assert repeat_add(base, increment, count) == expected
    pattern = [1 / 7, 1e-5, 0.25]
    monkeypatch.undo()
    expected_pattern = repeat_add_pattern(base, pattern, count)
    monkeypatch.setattr(batchmath, "_np", None)
    assert repeat_add_pattern(base, pattern, count) == expected_pattern


def test_have_numpy_reports_feature_detect(monkeypatch):
    assert have_numpy() is (batchmath._np is not None)
    monkeypatch.setattr(batchmath, "_np", None)
    assert have_numpy() is False


def test_results_are_finite_floats():
    result = repeat_add(0.0, 1e-9, 10_000)
    assert isinstance(result, float) and math.isfinite(result)
