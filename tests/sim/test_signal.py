"""Unit tests for two-phase signals and signal bundles."""

from __future__ import annotations

import pytest

from repro.sim.signal import Signal, SignalBundle, SignalError, WatchedValue


def test_drive_is_not_visible_until_commit():
    signal = Signal("s", 0)
    signal.drive(7)
    assert signal.value == 0
    assert signal.next_value == 7
    assert signal.commit() is True
    assert signal.value == 7


def test_commit_without_drive_keeps_value_and_reports_no_change():
    signal = Signal("s", 3)
    assert signal.commit() is False
    assert signal.value == 3


def test_last_drive_wins_within_a_phase():
    signal = Signal("s", 0)
    signal.drive(1)
    signal.drive(2)
    signal.commit()
    assert signal.value == 2


def test_commit_reports_false_when_driving_same_value():
    signal = Signal("s", 5)
    signal.drive(5)
    assert signal.commit() is False


def test_reset_returns_to_reset_value():
    signal = Signal("s", 9)
    signal.drive(1)
    signal.commit()
    signal.reset()
    assert signal.value == 9
    assert signal.next_value == 9


def test_signal_snapshot_restore_roundtrip():
    signal = Signal("s", 0)
    signal.drive(4)
    state = signal.snapshot()
    signal.commit()
    signal.drive(8)
    signal.commit()
    signal.restore(state)
    assert signal.value == 0
    assert signal.next_value == 4


def test_bundle_rejects_duplicate_names():
    bundle = SignalBundle("b")
    bundle.add("x")
    with pytest.raises(SignalError):
        bundle.add("x")


def test_bundle_commit_counts_changes():
    bundle = SignalBundle("b")
    bundle.add("x", 0)
    bundle.add("y", 0)
    bundle.add("z", 0)
    bundle.drive_many({"x": 1, "y": 0})
    assert bundle.commit() == 1
    assert bundle.values() == {"x": 1, "y": 0, "z": 0}


def test_bundle_snapshot_restore_roundtrip():
    bundle = SignalBundle("b")
    bundle.add("x", 0)
    bundle.add("y", 0)
    bundle.drive_many({"x": 3, "y": 4})
    bundle.commit()
    state = bundle.snapshot()
    bundle.drive_many({"x": 9, "y": 9})
    bundle.commit()
    bundle.restore(state)
    assert bundle.values() == {"x": 3, "y": 4}


def test_bundle_membership_and_iteration():
    bundle = SignalBundle("b")
    bundle.add("a")
    bundle.add("b")
    assert "a" in bundle
    assert "missing" not in bundle
    assert sorted(s.name for s in bundle) == ["b.a", "b.b"]
    assert sorted(bundle.names()) == ["a", "b"]


def test_watched_value_records_changes_and_calls_hook():
    changes = []
    watched = WatchedValue("w", 0, on_change=lambda c, old, new: changes.append((c, old, new)))
    watched.set(1, 0)  # no change
    watched.set(2, 5)
    watched.set(3, 5)  # no change
    watched.set(4, 7)
    assert watched.changes() == [(2, 5), (4, 7)]
    assert changes == [(2, 0, 5), (4, 5, 7)]
