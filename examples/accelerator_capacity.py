#!/usr/bin/env python
"""Map a split SoC onto the emulated accelerator and report capacity/rollback data.

Shows the accelerator-substrate side of the reproduction: which RTL blocks
end up in the acceleration domain, the estimated gate/register budget, and
how the register count relates to the rollback-variable budget used by the
performance model.

Run with::

    python examples/accelerator_capacity.py
"""

from __future__ import annotations

from repro.accelerator import AcceleratorSpec, EmulatedAccelerator
from repro.analysis.report import render_table
from repro.core import CoEmulationConfig, OperatingMode, create_engine
from repro.workloads import als_streaming_soc


def main() -> None:
    spec = als_streaming_soc(n_bursts=12)
    sim_hbm, acc_hbm, _ = spec.build_split()

    accelerator = EmulatedAccelerator(
        spec=AcceleratorSpec(cycles_per_second=10_000_000.0, capacity_gates=2_000_000)
    ).map_design(acc_hbm)
    report = accelerator.capacity_report()

    rows = [
        [name, str(info["gates"]), str(info["registers"])]
        for name, info in sorted(report["blocks"].items())
    ]
    print(
        render_table(
            ["RTL block", "gates (est.)", "registers (est.)"],
            rows,
            title="RTL blocks mapped onto the emulated accelerator",
        )
    )
    print(
        f"\nCapacity: {report['used_gates']:,} / {report['capacity_gates']:,} gates "
        f"({report['utilisation'] * 100:.1f}% utilisation)"
    )
    print(f"Registers to shadow for rb_store/rb_restore: {report['rollback_registers']:,}")

    # Use the accelerator's own register estimate as the rollback budget.
    config = CoEmulationConfig(
        mode=OperatingMode.ALS,
        total_cycles=400,
        rollback_variables=report["rollback_registers"],
    )
    sim_hbm2, acc_hbm2, _ = als_streaming_soc(n_bursts=12).build_split()
    result = create_engine(config, sim_hbm2, acc_hbm2).run()
    print(
        f"\nCo-emulation with that rollback budget: "
        f"{result.performance_cycles_per_second / 1000:.1f} kcycles/s, "
        f"Tstore = {result.tstore:.2e} s/cycle, Trestore = {result.trestore:.2e} s/cycle"
    )


if __name__ == "__main__":
    main()
