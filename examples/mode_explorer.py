#!/usr/bin/env python
"""Explore the operating modes (conservative / SLA / ALS / AUTO) on three SoCs.

The paper's fourth problem (Section 3) is the dynamic decision among SLA, ALS
and conservative operation.  This example runs three SoC configurations --
one where the data sources live in the accelerator (ALS-friendly), one where
they live in the simulator (SLA-friendly) and one with traffic in both
directions -- under every operating mode, and shows which leader wins where.

Run with::

    python examples/mode_explorer.py
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.analysis.sweep import mode_comparison
from repro.core import CoEmulationConfig, OperatingMode
from repro.workloads import als_streaming_soc, mixed_soc, sla_streaming_soc


CYCLES = 500


def explore(spec_name: str, spec) -> None:
    results = mode_comparison(
        spec,
        CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=CYCLES),
        modes=(
            OperatingMode.CONSERVATIVE,
            OperatingMode.ALS,
            OperatingMode.SLA,
            OperatingMode.AUTO,
        ),
    )
    baseline = results[OperatingMode.CONSERVATIVE]
    rows = []
    for mode, result in results.items():
        leaders = result.transitions.get("leaders_used", {})
        rows.append(
            [
                mode.value,
                f"{result.performance_cycles_per_second / 1000:.1f}k",
                f"{result.speedup_over(baseline):.2f}",
                str(result.transitions.get("conservative_cycles", result.committed_cycles)),
                str(result.transitions.get("rollbacks", 0)),
                ", ".join(f"{k}:{v}" for k, v in leaders.items()) or "-",
            ]
        )
    print(
        render_table(
            ["mode", "performance", "gain", "conservative cycles", "rollbacks", "transitions by leader"],
            rows,
            title=f"SoC '{spec_name}': {spec.description}",
        )
    )
    print()
    # every mode must produce the same bus traffic
    reference = baseline.sim_beat_keys
    for mode, result in results.items():
        assert result.sim_beat_keys == reference, f"mode {mode} diverged"


def main() -> None:
    explore("als_streaming", als_streaming_soc(n_bursts=12))
    explore("sla_streaming", sla_streaming_soc(n_bursts=12))
    explore("mixed", mixed_soc(n_transactions=32))
    print("All modes produced identical committed bus traffic on every SoC.")


if __name__ == "__main__":
    main()
