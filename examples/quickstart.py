#!/usr/bin/env python
"""Quickstart: co-emulate a small SoC with and without prediction packetizing.

Builds the ALS-friendly streaming SoC (RTL DMA engines in the accelerator
writing into transaction-level memories in the simulator), runs it once with
the conventional lock-step synchronisation and once with the paper's
prediction packetizing scheme (accelerator leading), and prints the modelled
performance, channel traffic and prediction statistics side by side.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CoEmulationConfig, OperatingMode, als_streaming_soc
from repro.analysis.report import render_table
from repro.core import create_engine


TOTAL_CYCLES = 600


def run_mode(mode: OperatingMode) -> "CoEmulationResult":
    spec = als_streaming_soc(n_bursts=16)
    sim_hbm, acc_hbm, _ = spec.build_split()
    config = CoEmulationConfig(mode=mode, total_cycles=TOTAL_CYCLES)
    return create_engine(config, sim_hbm, acc_hbm).run()


def main() -> None:
    conventional = run_mode(OperatingMode.CONSERVATIVE)
    optimistic = run_mode(OperatingMode.ALS)

    rows = []
    for label, result in (("conventional", conventional), ("prediction packetizing (ALS)", optimistic)):
        rows.append(
            [
                label,
                f"{result.performance_cycles_per_second / 1000:.1f} kcycles/s",
                str(result.channel["accesses"]),
                f"{result.channel['words_per_access']:.1f}",
                f"{result.tchannel * 1e6:.2f} us",
                f"{result.prediction.get('accuracy', 1.0):.3f}",
            ]
        )
    print(
        render_table(
            ["scheme", "performance", "channel accesses", "words/access", "Tch per cycle", "prediction accuracy"],
            rows,
            title=f"Co-emulating {TOTAL_CYCLES} target cycles of the ALS streaming SoC",
        )
    )
    gain = optimistic.speedup_over(conventional)
    print(f"\nSpeed-up of the prediction packetizing scheme: {gain:.1f}x")
    print(f"Rollbacks: {optimistic.transitions['rollbacks']}, "
          f"transitions: {optimistic.transitions['transitions']}, "
          f"mean run-ahead length: {optimistic.transitions['mean_run_ahead_length']:.1f} cycles")

    # The two schemes must agree on every committed bus transfer.
    assert optimistic.sim_beat_keys == conventional.sim_beat_keys
    print("\nFunctional equivalence with the lock-step run: OK "
          f"({len(optimistic.sim_beat_keys)} committed beats identical)")


if __name__ == "__main__":
    main()
