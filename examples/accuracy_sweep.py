#!/usr/bin/env python
"""Sweep prediction accuracy, analytically and mechanism-level (Table 2 / Figure 4).

Reproduces the paper's accuracy sweep twice:

1. with the closed-form analytical model (the paper's own methodology), and
2. with the protocol-level co-emulation engine, injecting prediction failures
   at the target rate,

then prints both next to the paper's published Table 2 numbers and renders an
ASCII version of Figure 4.

Run with::

    python examples/accuracy_sweep.py
"""

from __future__ import annotations

from repro.analysis.report import Series, render_ascii_chart, render_table
from repro.analysis.sweep import accuracy_sweep_mechanism, run_engine
from repro.core import CoEmulationConfig, OperatingMode
from repro.core.analytical import PAPER_TABLE2, figure4, table2
from repro.workloads import als_streaming_soc


MECHANISM_ACCURACIES = (1.0, 0.99, 0.9, 0.8, 0.6, 0.3)
MECHANISM_CYCLES = 400


def print_analytical_table() -> None:
    rows = []
    for estimate in table2():
        paper = PAPER_TABLE2[round(estimate.prediction_accuracy, 3)]
        rows.append(
            [
                f"{estimate.prediction_accuracy:.3f}",
                f"{estimate.performance / 1000:.0f}k",
                f"{paper['performance'] / 1000:.0f}k",
                f"{estimate.ratio:.2f}",
                f"{paper['ratio']:.2f}",
            ]
        )
    print(
        render_table(
            ["accuracy", "reproduced perf", "paper perf", "reproduced ratio", "paper ratio"],
            rows,
            title="Table 2 (ALS, analytical model) -- reproduction vs paper",
        )
    )


def print_mechanism_table() -> None:
    spec = als_streaming_soc(n_bursts=10)
    conventional = run_engine(
        spec, CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=MECHANISM_CYCLES)
    )
    points = accuracy_sweep_mechanism(
        spec,
        CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=MECHANISM_CYCLES),
        MECHANISM_ACCURACIES,
    )
    rows = [
        [
            point.label,
            f"{point.result.performance_cycles_per_second / 1000:.1f}k",
            f"{point.result.speedup_over(conventional):.2f}",
            str(point.result.transitions["rollbacks"]),
            str(point.result.channel["accesses"]),
        ]
        for point in points
    ]
    rows.append(
        ["conventional", f"{conventional.performance_cycles_per_second / 1000:.1f}k", "1.00", "0",
         str(conventional.channel["accesses"])]
    )
    print()
    print(
        render_table(
            ["injected accuracy", "performance", "gain", "rollbacks", "channel accesses"],
            rows,
            title=f"Mechanism-level ALS sweep ({MECHANISM_CYCLES} target cycles)",
        )
    )


def print_figure4() -> None:
    markers = {"Sim=100k, LOBdepth=64": "a", "Sim=100k, LOBdepth=8": "b",
               "Sim=1000k, LOBdepth=64": "C", "Sim=1000k, LOBdepth=8": "D"}
    series = [
        Series(
            label=label,
            x=[e.prediction_accuracy for e in estimates],
            y=[e.performance for e in estimates],
            marker=markers[label],
        )
        for label, estimates in figure4().items()
    ]
    print()
    print(
        render_ascii_chart(
            series,
            title="Figure 4 (reproduced): ALS performance vs prediction accuracy",
            x_label="prediction accuracy",
            y_label="cycles/s",
            reference_lines={"conventional @1000k": 38.9e3, "conventional @100k": 28.8e3},
        )
    )


def main() -> None:
    print_analytical_table()
    print_mechanism_table()
    print_figure4()


if __name__ == "__main__":
    main()
